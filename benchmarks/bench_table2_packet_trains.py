"""Table 2 — the star self-join on packet-train data.

Paper setup: six 15-minute MAWI traces (P03..P08, 0.2M-9.1M packets),
packet trains built with a 500 ms inter-arrival cut-off, each train set
replicated to 3M trains, then the star self-join
``R ov R' and R' ov R''`` with 16 reducers; 2-way Cd vs RCCIS.

Here the synthetic trace profiles mirror the paper's packet/train count
ratios at 1/100 scale; each train set is replicated to 6K trains (paper's
3M / 500) and the observation window is compressed 8x to restore part of
the offered load that replication-to-3M gave the paper (see
``repro.workloads.packets.compress_time``).  The cost model is scaled to
match.  Expected shape: the RCCIS advantage grows with trace size — at
this scale the two smallest traces are job-overhead-bound and roughly
tie, while P05-P08 show RCCIS ahead, mirroring the paper's widening
margin (3.4x on P03 up to ~12x on P08).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    human_count,
    human_seconds,
    print_section,
    render_table,
    run_algorithm,
    scaled_cost_model,
)

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.core.schema import Relation  # noqa: E402
from repro.workloads import (  # noqa: E402
    TRACE_PROFILES,
    build_packet_trains,
    generate_trace,
    replicate_trains,
)
from repro.workloads.packets import compress_time  # noqa: E402

SCALE = 500.0
TARGET_TRAINS = 6_000
COMPRESSION = 8.0
QUERY = IntervalJoinQuery.parse(
    [("T1", "overlaps", "T2"), ("T2", "overlaps", "T3")]
)


def trace_data(
    trace: str,
    target: int = TARGET_TRAINS,
    compression: float = COMPRESSION,
):
    packets = generate_trace(
        TRACE_PROFILES[trace], seed=sum(map(ord, trace))
    )
    trains = build_packet_trains(packets, gap_threshold=0.5)
    scaled = compress_time(
        replicate_trains(trains, target, seed=1), compression
    )
    base = Relation.of_intervals("T1", scaled)
    return {"T1": base, "T2": base.alias("T2"), "T3": base.alias("T3")}


def main() -> None:
    print_section(
        "Table 2 — star self-join R ov R' and R' ov R'' on packet trains "
        f"(each trace replicated to {TARGET_TRAINS} trains, 16 reducers)"
    )
    cost = scaled_cost_model(SCALE)
    rows = []
    for trace in sorted(TRACE_PROFILES):
        profile = TRACE_PROFILES[trace]
        data = trace_data(trace)
        results = {
            name: run_algorithm(
                QUERY, data, name, num_partitions=16, cost_model=cost
            )
            for name in ("two_way_cascade", "rccis")
        }
        assert results["rccis"].same_output(results["two_way_cascade"])
        rows.append(
            [
                trace,
                profile.date,
                human_count(profile.n_packets),
                human_count(len(data["T1"])),
                human_count(len(results["rccis"])),
                human_seconds(
                    results["two_way_cascade"].metrics.simulated_seconds
                ),
                human_seconds(results["rccis"].metrics.simulated_seconds),
            ]
        )
    print(
        render_table(
            "",
            [
                "trace", "date", "#pkts", "#trains", "output",
                "t 2-way Cd", "t RCCIS",
            ],
            rows,
            note="paper: RCCIS wins every trace (00:07-00:11 vs "
            "00:13-02:08), margin widening with trace size",
        )
    )


@pytest.mark.parametrize("algorithm", ["two_way_cascade", "rccis"])
def test_table2_small(benchmark, algorithm):
    data = trace_data("P04", target=2_000)
    cost = scaled_cost_model(SCALE)
    result = benchmark.pedantic(
        lambda: run_algorithm(
            QUERY, data, algorithm, num_partitions=16, cost_model=cost
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result) >= 0


if __name__ == "__main__":
    main()
