"""Data-plane profiler overhead gate (< 10 % of the unprofiled run).

The profiler's contract is that its default level is cheap enough to
leave on: a sampling stack walker (4 ms period), RSS/allocated-blocks
watermarks, ``gc.callbacks`` pause timing and serialization-boundary
counters, but *no* tracemalloc (the ``full`` level's tracemalloc
watermarks cost several hundred percent and are opt-in only).  This
benchmark pins that contract:

* times a two-way join observed-but-unprofiled and observed-profiled
  (best of ``REPEATS`` each, interleaved so drift hits both arms
  equally) — the profiler is an increment on an observed run (``repro
  run --profile`` implies observation), so its own cost is what the
  gate isolates,
* asserts the profiled run stays under ``MAX_OVERHEAD_FRACTION``,
* asserts profiled output is bit-identical to the unprofiled run, and
* runs one profiled query per executor, asserting every backend reports
  the profile metric families (the processes backend must also report
  pickle bytes — its serialization boundary is real).

The workload is sized so the run takes hundreds of milliseconds: the
profiler has a few milliseconds of fixed start/stop cost (sampler
thread, gc hooks) that would swamp a micro-run but is irrelevant at any
scale worth profiling.  Writes ``BENCH_profile.json`` with the measured
overhead fraction.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import emit_bench_json, print_section, render_table  # noqa: E402

from repro.core.executor import execute  # noqa: E402
from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.mapreduce.runner import (  # noqa: E402
    EXECUTORS,
    shutdown_worker_pools,
)
from repro.obs import TraceRecorder  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

#: The profiled run's wall clock may exceed the observed-unprofiled
#: run's by at most this fraction (the < 10 % budget, measured best-of).
MAX_OVERHEAD_FRACTION = 0.10

REPEATS = 5
RELATION_ROWS = 8_000
NUM_PARTITIONS = 8

QUERY = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])


def make_data(rows=RELATION_ROWS):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=rows,
                t_range=(0, 100_000),
                length_range=(1, 100),
                seed=index,
            ),
        )
        for index, name in enumerate(("R1", "R2"))
    }


def _run(data, executor="serial", workers=2, profile=False):
    observer = TraceRecorder(profile=profile)
    start = time.perf_counter()
    result = execute(
        QUERY,
        data,
        algorithm="two_way",
        num_partitions=NUM_PARTITIONS,
        executor=executor,
        workers=workers,
        observer=observer,
    )
    elapsed = time.perf_counter() - start
    observer.close()
    return result, elapsed, observer


def measure_overhead(data, repeats=REPEATS):
    """Best-of wall clock of the plain and profiled arms, interleaved."""
    plain_best = profiled_best = None
    plain_ids = profiled_ids = None
    for _ in range(repeats):
        result, elapsed, _ = _run(data, profile=False)
        plain_best = elapsed if plain_best is None else min(plain_best, elapsed)
        plain_ids = result.tuple_ids()
        result, elapsed, _ = _run(data, profile=True)
        profiled_best = (
            elapsed if profiled_best is None else min(profiled_best, elapsed)
        )
        profiled_ids = result.tuple_ids()
    assert profiled_ids == plain_ids, "profiled output diverged"
    return plain_best, profiled_best


def profile_families(data, executor, workers=2):
    """Names of ``profile``-group families a profiled run reported."""
    _, _, observer = _run(data, executor=executor, profile=True)
    snapshot = observer.metrics.as_dict()
    return {
        name
        for name, entry in snapshot.items()
        if entry.get("group") == "profile" and entry.get("samples")
    }


def main() -> None:
    data = make_data()
    print_section(
        f"Data-plane profiler overhead — {QUERY!s}, "
        f"n={RELATION_ROWS} per relation, {NUM_PARTITIONS} partitions"
    )
    plain_s, profiled_s = measure_overhead(data)
    overhead = profiled_s / plain_s - 1.0
    print(
        render_table(
            f"best of {REPEATS} (serial executor)",
            ["arm", "seconds", "vs observed"],
            [
                ["observed (unprofiled)", f"{plain_s:.4f}", "1.0000"],
                ["observed + profiled", f"{profiled_s:.4f}",
                 f"{profiled_s / plain_s:.4f}"],
            ],
        )
    )
    assert overhead < MAX_OVERHEAD_FRACTION, (
        f"profiler costs {overhead:.2%} of the run — over the "
        f"{MAX_OVERHEAD_FRACTION:.0%} budget"
    )
    print(
        f"overhead {overhead:+.4%} < {MAX_OVERHEAD_FRACTION:.0%} budget: ok"
    )

    small = make_data(400)
    per_executor = {}
    try:
        for executor in EXECUTORS:
            families = profile_families(small, executor)
            assert any(
                name.startswith("repro_profile_cpu") for name in families
            ), f"{executor}: no CPU profile metrics"
            if executor == "processes":
                assert "repro_profile_pickle_bytes_total" in families, (
                    "processes executor reported no pickle traffic"
                )
            per_executor[executor] = len(families)
            print(f"{executor}: {len(families)} profile families")
    finally:
        shutdown_worker_pools()

    emit_bench_json(
        "profile",
        {
            "rows": RELATION_ROWS,
            "observed_seconds": round(plain_s, 6),
            "profiled_seconds": round(profiled_s, 6),
            "overhead_fraction": round(overhead, 6),
            "profile_families": per_executor,
            "note": (
                "overhead is profiled-vs-observed (the profiler's own "
                "increment), default ('cpu') level only; the opt-in "
                "'full' level adds tracemalloc and is far over this "
                "budget by design"
            ),
        },
    )


# ---------------------------------------------------------------- pytest
@pytest.mark.parametrize("profile", [False, True], ids=["plain", "profiled"])
def test_profile_wallclock(benchmark, profile):
    data = make_data(300)
    result = benchmark.pedantic(
        lambda: _run(data, profile=profile)[0], rounds=1, iterations=1
    )
    assert len(result) > 0


if __name__ == "__main__":
    main()
