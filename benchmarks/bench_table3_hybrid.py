"""Table 3 — hybrid query Q4 with pruning.

Paper setup: Q4 = R1 before R2 and R1 overlaps R3; nI = (5M, 100K, 1K);
dS, dI uniform; t range (0, 200K); R3's maximum interval length swept
1000 -> 200 to control how many R1 intervals survive the colocation
pruning.  Columns: FCTS vs All-Seq-Matrix vs Pruned-All-Seq-Matrix times
and the percentage of R1 pruned.

Here sizes are scaled to (10K, 60, 100): the paper's extreme 5M:1K ratio
cannot survive a 500x down-scale (R3 would hold two intervals), so the
ratios are compressed while keeping R1 dominant.  Expected shape: the
pruning percentage rises as R3's intervals shrink, and PASM ships
markedly fewer pairs than All-Seq-Matrix.  Modelled *times* for PASM and
All-Seq-Matrix are near-tied at this scale: PASM's marking cycle must
re-ship all of R1 once, which costs about what its grid savings earn
back when the grid straggler (n/o per cell, identical for both designs)
binds.  The paper's 2x PASM speedups imply a regime where the grid
cycle's aggregate traffic utterly dominates per-cycle costs; see
EXPERIMENTS.md for the full accounting.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    human_count,
    human_seconds,
    print_section,
    render_table,
    run_algorithm,
    scaled_cost_model,
)

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

SCALE = 2_000.0
Q4 = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
)
SIZES = {"R1": 10_000, "R2": 60, "R3": 100}
ALGORITHMS = ("fcts", "all_seq_matrix", "pasm")


def make_data(r3_max_length: float):
    t_range = (0, 200_000)
    return {
        "R1": generate_relation(
            "R1",
            SyntheticConfig(
                n=SIZES["R1"], t_range=t_range, length_range=(1, 1_000),
                seed=1,
            ),
        ),
        "R2": generate_relation(
            "R2",
            SyntheticConfig(
                n=SIZES["R2"], t_range=t_range, length_range=(1, 1_000),
                seed=2,
            ),
        ),
        "R3": generate_relation(
            "R3",
            SyntheticConfig(
                n=SIZES["R3"], t_range=t_range,
                length_range=(1, r3_max_length), seed=3,
            ),
        ),
    }


def run_row(r3_max_length: float, grid_parts: int = 6):
    data = make_data(r3_max_length)
    cost = scaled_cost_model(SCALE)
    results = {
        name: run_algorithm(
            Q4, data, name, num_partitions=grid_parts,
            cost_model=cost, grid_parts=grid_parts,
        )
        for name in ALGORITHMS
    }
    outputs = {len(r) for r in results.values()}
    assert len(outputs) == 1, "algorithms disagreed"
    return data, results


def main() -> None:
    print_section(
        "Table 3 — Q4 = R1 bf R2 and R1 ov R3; nI = (10K, 60, 100); "
        "R3 max interval length swept (6x6 grid)"
    )
    rows = []
    for r3_max in (6_000, 4_000, 2_000, 800, 400):
        data, results = run_row(r3_max)
        pasm = results["pasm"]
        pruned_pct = 100.0 * pasm.metrics.pruned_rows / (
            len(data["R1"]) + len(data["R3"])
        )
        asm = results["all_seq_matrix"]
        rows.append(
            [
                human_count(r3_max),
                human_seconds(results["fcts"].metrics.simulated_seconds),
                human_seconds(
                    results["all_seq_matrix"].metrics.simulated_seconds
                ),
                human_seconds(pasm.metrics.simulated_seconds),
                f"{pruned_pct:.1f}",
                human_count(asm.metrics.shuffled_records),
                human_count(pasm.metrics.shuffled_records),
            ]
        )
    print(
        render_table(
            "",
            [
                "R3 i_max", "t FCTS", "t All-Seq-Matrix", "t PASM",
                "% pruned", "pairs ASM", "pairs PASM",
            ],
            rows,
            note="paper: pruning 23-62% as i_max shrinks; here pruning "
            "cuts shipped pairs ~40% while modelled times stay close "
            "(see module docstring)",
        )
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table3_bench(benchmark, algorithm):
    data = make_data(2_000)
    # shrink R1 for the timed variant
    from repro.core.schema import Relation

    data["R1"] = Relation("R1", data["R1"].rows[:1_000])
    cost = scaled_cost_model(SCALE)
    result = benchmark.pedantic(
        lambda: run_algorithm(
            Q4, data, algorithm, num_partitions=6,
            cost_model=cost, grid_parts=6,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result) >= 0


if __name__ == "__main__":
    main()
