"""Executor benchmark — real wall-clock of serial vs threads vs processes.

Unlike the paper-table benchmarks (whose *modelled* seconds come from the
cost model), this one measures the actual wall-clock of the simulator's
three execution backends on identical workloads, asserting bit-identical
outputs along the way.  Results go to ``BENCH_executors.json`` (see
:func:`common.emit_bench_json`) with the host CPU count recorded — the
processes backend can only beat serial when the machine has cores to
spare; on a single-core host the JSON documents that honestly instead of
faking a speedup.  Each workload row also carries a per-executor
``phases`` breakdown — map/shuffle/reduce wall seconds summed from the
phase spans of one observed (untimed) run per executor — so a slowdown
can be localised to the phase that caused it.

Every executor is timed on **both data planes** (see
``docs/data_plane.md``): the records plane's tuple-at-a-time pipeline
and the columnar plane's struct-of-arrays shuffle, with
``{executor}_columnar_speedup`` reporting records ÷ columnar per
executor.  Workloads whose jobs fall back to the records plane (the
matrix algorithms) honestly report a ratio near 1.

Run directly (``python benchmarks/bench_executors.py``) for the full
sweep — ``--scale N`` multiplies every workload's row count, e.g.
``--scale 10`` for the configuration where the processes backend is
expected to pay off on a multi-core host — or via pytest-benchmark for
the small pinned configurations.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import emit_bench_json, print_section, render_table  # noqa: E402

from repro.core.executor import execute  # noqa: E402
from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.mapreduce.runner import (  # noqa: E402
    EXECUTORS,
    resolve_workers,
    shutdown_worker_pools,
)
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

TWO_WAY = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
COLOCATION = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
HYBRID = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
)

#: (label, algorithm, query, relation names, rows per relation)
WORKLOADS = [
    ("two_way", "two_way", TWO_WAY, ("R1", "R2"), 4_000),
    ("rccis", "rccis", COLOCATION, ("R1", "R2", "R3"), 1_200),
    ("pasm", "pasm", HYBRID, ("R1", "R2", "R3"), 1_200),
    ("gen_matrix", "gen_matrix", HYBRID, ("R1", "R2", "R3"), 1_200),
]


def make_data(names, n, seed_base=0):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=n,
                t_range=(0, 100_000),
                length_range=(1, 100),
                seed=seed_base + index,
            ),
        )
        for index, name in enumerate(names)
    }


def _timed_run(query, data, algorithm, executor, workers, data_plane="records"):
    start = time.perf_counter()
    result = execute(
        query,
        data,
        algorithm=algorithm,
        num_partitions=8,
        executor=executor,
        workers=workers,
        data_plane=data_plane,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def phase_breakdown(query, data, algorithm, executor, workers):
    """Per-phase (map/shuffle/reduce) wall seconds of one observed run.

    A separate run from the timed ones, so the observer's overhead never
    perturbs the headline numbers; phase spans of every job are summed
    by phase name.
    """
    from repro.obs import TraceRecorder

    observer = TraceRecorder()
    execute(
        query,
        data,
        algorithm=algorithm,
        num_partitions=8,
        executor=executor,
        workers=workers,
        observer=observer,
    )
    observer.close()
    totals = {"map": 0.0, "shuffle": 0.0, "reduce": 0.0}
    for span in observer.spans:
        if span.kind == "phase" and span.name in totals:
            totals[span.name] += span.duration
    return {phase: round(seconds, 4) for phase, seconds in totals.items()}


def run_workload(label, algorithm, query, names, n, workers, repeats=3):
    """Best-of-``repeats`` wall-clock per executor × data plane, with
    every arm's output parity-checked against the first."""
    data = make_data(names, n)
    row = {"workload": label, "algorithm": algorithm, "rows": n}
    baseline_ids = None
    phases = {}
    for executor in EXECUTORS:
        for plane in ("records", "columnar"):
            best = None
            for _ in range(repeats):
                result, elapsed = _timed_run(
                    query, data, algorithm, executor, workers, plane
                )
                best = elapsed if best is None else min(best, elapsed)
            ids = result.tuple_ids()
            if baseline_ids is None:
                baseline_ids = ids
                row["tuples"] = len(result)
                # Modelled cluster seconds are executor-independent
                # (counters are bit-identical), so one value covers the
                # row.
                row["modelled_seconds"] = round(
                    result.metrics.simulated_seconds, 4
                )
            else:
                assert ids == baseline_ids, (
                    f"{label}: {executor}/{plane} output diverged "
                    f"from serial/records"
                )
            suffix = "_seconds" if plane == "records" else "_columnar_seconds"
            row[f"{executor}{suffix}"] = round(best, 4)
        phases[executor] = phase_breakdown(
            query, data, algorithm, executor, workers
        )
    row["phases"] = phases
    for executor in ("threads", "processes"):
        row[f"{executor}_speedup"] = round(
            row["serial_seconds"] / row[f"{executor}_seconds"], 3
        )
    for executor in EXECUTORS:
        row[f"{executor}_columnar_speedup"] = round(
            row[f"{executor}_seconds"] / row[f"{executor}_columnar_seconds"],
            3,
        )
    return row


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Wall-clock of the three executors on both data planes."
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="multiply every workload's row count (default 1; the "
        "committed baseline is recorded at scale 1)",
    )
    args = parser.parse_args(argv)
    if args.scale < 1:
        parser.error("--scale must be a positive integer")

    workers = resolve_workers(None)
    print_section(
        f"Executor wall-clock — serial vs threads vs processes "
        f"({workers} workers, {os.cpu_count()} CPUs, scale {args.scale})"
    )
    rows = []
    try:
        for label, algorithm, query, names, n in WORKLOADS:
            rows.append(
                run_workload(
                    label, algorithm, query, names, n * args.scale, workers
                )
            )
    finally:
        shutdown_worker_pools()
    headers = [
        "workload", "rows", "tuples",
        "serial s", "threads s", "processes s",
        "threads x", "processes x",
    ]
    table = [
        [
            row["workload"], row["rows"], row["tuples"],
            f"{row['serial_seconds']:.3f}",
            f"{row['threads_seconds']:.3f}",
            f"{row['processes_seconds']:.3f}",
            f"{row['threads_speedup']:.2f}",
            f"{row['processes_speedup']:.2f}",
        ]
        for row in rows
    ]
    print(render_table("executor wall-clock (best of 3)", headers, table))
    plane_rows = [
        [
            row["workload"],
            executor,
            f"{row[f'{executor}_seconds']:.3f}",
            f"{row[f'{executor}_columnar_seconds']:.3f}",
            f"{row[f'{executor}_columnar_speedup']:.2f}",
        ]
        for row in rows
        for executor in EXECUTORS
    ]
    print(
        render_table(
            "data-plane wall-clock (best of 3; columnar x = records / columnar)",
            ["workload", "executor", "records s", "columnar s", "columnar x"],
            plane_rows,
        )
    )
    phase_rows = [
        [
            row["workload"],
            executor,
            f"{breakdown['map']:.3f}",
            f"{breakdown['shuffle']:.3f}",
            f"{breakdown['reduce']:.3f}",
        ]
        for row in rows
        for executor, breakdown in row["phases"].items()
    ]
    print(
        render_table(
            "per-phase wall-clock (one observed run per executor)",
            ["workload", "executor", "map s", "shuffle s", "reduce s"],
            phase_rows,
        )
    )
    # One small observed run (outside the timing loops, so it cannot
    # perturb them) attaches a metrics snapshot to the artifact.
    from repro.obs import TraceRecorder

    observer = TraceRecorder()
    execute(
        TWO_WAY,
        make_data(("R1", "R2"), 800),
        algorithm="two_way",
        num_partitions=8,
        executor="serial",
        observer=observer,
    )
    emit_bench_json(
        "executors",
        {
            "workers": workers,
            "scale": args.scale,
            "note": (
                "processes speedup requires free cores; on hosts where "
                "cpu_count is 1 the parallel backends can only document "
                "their overhead"
            ),
            "workloads": rows,
        },
        metrics=observer.metrics,
    )


# ---------------------------------------------------------------- pytest
@pytest.mark.parametrize("executor", EXECUTORS)
def test_executor_wallclock(benchmark, executor):
    data = make_data(("R1", "R2"), 800)

    def run():
        return execute(
            TWO_WAY,
            data,
            algorithm="two_way",
            num_partitions=8,
            executor=executor,
            workers=2,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result) > 0


if __name__ == "__main__":
    main()
