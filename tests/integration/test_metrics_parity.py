"""Metrics parity: the ``run`` group is executor- and chaos-invariant.

The contract stated in :mod:`repro.obs.metrics`: every metric in the
``run`` group is a deterministic fact of the computation, so its samples
must be bit-identical whether the simulator executed serially, on
threads, or on worker processes — and a chaos run under the pinned
fault plan of :mod:`tests.integration.test_fault_parity` must produce
the same ``run``-group fingerprint as a fault-free run (retries replay
work; only the ``faults`` and ``wall`` groups may differ).
"""

from __future__ import annotations

import pytest

from repro.core.executor import execute
from repro.obs import TraceRecorder
from repro.obs.metrics import GROUP_FAULTS, GROUP_WALL

from tests.conftest import make_dataset
from tests.integration.test_fault_parity import CASES, pinned_plan

EXECUTORS = ("serial", "threads", "processes")


def _metrics_of(algorithm, query, relations, executor, faults=False):
    recorder = TraceRecorder()
    execute(
        query,
        make_dataset(relations, 60, seed=11),
        algorithm=algorithm,
        num_partitions=5,
        executor=executor,
        workers=2,
        observer=recorder,
        faults=faults,
        max_attempts=3 if faults else 1,
    )
    return recorder.metrics


@pytest.mark.parametrize(
    "algorithm,query,relations",
    CASES,
    ids=[case[0] for case in CASES],
)
class TestMetricsParity:
    def test_identical_across_executors(self, algorithm, query, relations):
        fingerprints = [
            _metrics_of(algorithm, query, relations, executor).fingerprint(
                exclude_groups=(GROUP_WALL,)
            )
            for executor in EXECUTORS
        ]
        assert fingerprints[0], "run must record metrics"
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_chaos_invariant_modulo_faults(self, algorithm, query, relations):
        clean = _metrics_of(algorithm, query, relations, "serial")
        chaos = _metrics_of(
            algorithm, query, relations, "serial", faults=pinned_plan()
        )
        exclude = (GROUP_WALL, GROUP_FAULTS)
        assert chaos.fingerprint(exclude) == clean.fingerprint(exclude)
        # The chaos run really did retry — visible in the faults group.
        faults_only = {
            name: samples
            for name, samples in chaos.fingerprint(
                exclude_groups=(GROUP_WALL,)
            ).items()
            if name not in chaos.fingerprint(exclude)
        }
        assert any(samples for samples in faults_only.values())
