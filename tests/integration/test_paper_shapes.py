"""Shape-regression tests: the reproduction's headline claims, pinned.

EXPERIMENTS.md reports qualitative shapes (who wins, by what factor).
These tests re-assert them at small scale so a regression in any
algorithm's communication behaviour fails CI rather than silently
degrading the tables.
"""

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.core.planner import ALGORITHMS
from repro.stats import load_balance
from repro.workloads import SyntheticConfig, generate_relation

Q1 = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
Q2 = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)
Q4 = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
)


def synth(name, n, seed, max_len=100, t_max=100_000):
    return generate_relation(
        name,
        SyntheticConfig(
            n=n, t_range=(0, t_max), length_range=(1, max_len), seed=seed
        ),
    )


class TestTable1Shapes:
    """Q1 with the paper's exact length/range parameters."""

    @pytest.fixture(scope="class")
    def results(self):
        data = {
            name: synth(name, 1_500, seed)
            for seed, name in enumerate(("R1", "R2", "R3"))
        }
        return {
            algorithm: execute(
                Q1, data, algorithm=algorithm, num_partitions=16
            )
            for algorithm in ("rccis", "all_replicate", "two_way_cascade")
        }

    def test_all_agree(self, results):
        rccis = results["rccis"]
        assert rccis.same_output(results["all_replicate"])
        assert rccis.same_output(results["two_way_cascade"])

    def test_rccis_replicates_under_5_percent_of_all_rep(self, results):
        rccis = results["rccis"].metrics.replicated_intervals
        allrep = results["all_replicate"].metrics.replicated_intervals
        assert rccis < 0.05 * allrep

    def test_rccis_pairs_per_input_near_two(self, results):
        # The paper's structural ratio: split cycle + route cycle ≈ 2.07x.
        pairs = results["rccis"].metrics.shuffled_records
        inputs = 3 * 1_500
        assert 1.9 <= pairs / inputs <= 2.4

    def test_all_rep_ships_most(self, results):
        assert (
            results["all_replicate"].metrics.shuffled_records
            > results["rccis"].metrics.shuffled_records
        )


class TestFigure4Shape:
    def test_all_matrix_balances_better_than_all_rep(self):
        data = {
            name: synth(name, 400, seed, max_len=100, t_max=1_000)
            for seed, name in enumerate(("R1", "R2"))
        }
        q = IntervalJoinQuery.parse([("R1", "before", "R2")])
        allrep = execute(q, data, algorithm="all_replicate", num_partitions=6)
        matrix = execute(
            q, data, algorithm=ALGORITHMS["all_matrix"](grid_parts=3),
            num_partitions=3,
        )
        assert allrep.same_output(matrix)
        rep_balance = load_balance(allrep.metrics.reducer_loads)
        mat_balance = load_balance(matrix.metrics.reducer_loads)
        assert mat_balance.fairness > rep_balance.fairness
        assert mat_balance.imbalance < rep_balance.imbalance
        # All-Rep's loads climb monotonically toward the right-most
        # reducer (the paper's Figure 4 picture).
        loads = [
            load
            for _, load in sorted(allrep.metrics.reducer_loads.items())
        ]
        assert loads == sorted(loads)


class TestFigure5Shape:
    def test_all_matrix_ships_least(self):
        data = {
            name: synth(name, 80, seed, max_len=100, t_max=1_000)
            for seed, name in enumerate(("R1", "R2", "R3"))
        }
        matrix = execute(
            Q2, data, algorithm=ALGORITHMS["all_matrix"](grid_parts=6),
            num_partitions=6,
        )
        allrep = execute(Q2, data, algorithm="all_replicate", num_partitions=36)
        assert matrix.same_output(allrep)
        assert (
            matrix.metrics.shuffled_records
            < allrep.metrics.shuffled_records
        )

    def test_paper_grid_counts(self):
        data = {
            name: synth(name, 30, seed, max_len=100, t_max=1_000)
            for seed, name in enumerate(("R1", "R2", "R3"))
        }
        result = execute(
            Q2, data, algorithm=ALGORITHMS["all_matrix"](grid_parts=6),
            num_partitions=6,
        )
        assert result.metrics.consistent_reducers == 56  # paper says 55
        assert result.metrics.total_reducers == 216


class TestTable3Shape:
    def test_pasm_ships_less_than_asm(self):
        data = {
            "R1": synth("R1", 2_000, 1, max_len=1_000, t_max=200_000),
            "R2": synth("R2", 60, 2, max_len=1_000, t_max=200_000),
            "R3": synth("R3", 50, 3, max_len=600, t_max=200_000),
        }
        asm = execute(
            Q4, data, algorithm=ALGORITHMS["all_seq_matrix"](grid_parts=6),
            num_partitions=6,
        )
        pasm = execute(
            Q4, data, algorithm=ALGORITHMS["pasm"](grid_parts=6),
            num_partitions=6,
        )
        assert pasm.same_output(asm)
        assert pasm.metrics.pruned_rows > 0
        assert pasm.metrics.shuffled_records < asm.metrics.shuffled_records


class TestTable4Shape:
    def test_q5_consistent_reducers_exact(self):
        import random

        from repro.core.schema import Relation, Row
        from repro.intervals.interval import Interval

        rng = random.Random(5)

        def rel(name, n, attrs):
            rows = []
            for rid in range(n):
                start = rng.uniform(0, 1_000)
                values = {"I": Interval(start, start + rng.uniform(1, 50))}
                for attr in attrs:
                    values[attr] = float(rng.randint(0, 3))
                rows.append(Row.make(rid, values))
            return Relation(name, rows)

        q5 = IntervalJoinQuery.parse(
            [
                ("R1.I", "before", "R2.I"),
                ("R1.I", "overlaps", "R3.I"),
                ("R1.A", "=", "R3.A"),
                ("R2.B", "=", "R3.B"),
            ]
        )
        data = {
            "R1": rel("R1", 30, ["A"]),
            "R2": rel("R2", 30, ["B"]),
            "R3": rel("R3", 30, ["A", "B"]),
        }
        result = execute(
            q5, data, algorithm=ALGORITHMS["gen_matrix"](grid_parts=5),
            num_partitions=5,
        )
        assert result.metrics.consistent_reducers == 375
        assert result.metrics.total_reducers == 625
