"""Randomized soak: larger random queries (4-5 relations, random tree
shapes, mixed predicates) across every applicable algorithm vs the
oracle.  Complements the hypothesis chains (which stay small for
shrinkability) with deeper shapes at fixed seeds."""

import random

import pytest

from tests.conftest import assert_matches_reference

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery, QueryClass
from repro.core.schema import Relation
from repro.intervals.interval import Interval

COLOCATION = [
    "overlaps", "overlapped_by", "contains", "during", "meets", "met_by",
    "starts", "started_by", "finishes", "finished_by", "equals",
]
ALL_PREDICATES = COLOCATION + ["before", "after"]


def random_query(rng: random.Random, m: int, predicates):
    """A random tree-shaped query over m relations."""
    names = [f"R{i}" for i in range(1, m + 1)]
    conditions = []
    for index in range(1, m):
        parent = names[rng.randrange(index)]
        conditions.append((parent, rng.choice(predicates), names[index]))
    return IntervalJoinQuery.parse(conditions)


def random_data(rng: random.Random, query, n, span=80, max_len=12):
    data = {}
    for name in query.relations:
        intervals = []
        for _ in range(n):
            start = rng.randint(0, span)
            intervals.append(Interval(start, start + rng.randint(0, max_len)))
        data[name] = Relation.of_intervals(name, intervals)
    return data


def algorithms_for(query) -> list:
    klass = query.query_class
    out = ["all_replicate", "two_way_cascade"]
    if klass is QueryClass.COLOCATION:
        out += ["rccis", "all_seq_matrix", "gen_matrix"]
    elif klass is QueryClass.SEQUENCE:
        out += ["all_matrix", "gen_matrix"]
    else:
        out += ["all_seq_matrix", "pasm", "fcts"]
    return out


@pytest.mark.parametrize("seed", range(12))
def test_four_way_random_tree(seed):
    rng = random.Random(1000 + seed)
    # Mostly colocation, with a chance of sequence edges (pure-sequence
    # 4-ways explode combinatorially, so bias accordingly).
    predicates = COLOCATION * 3 + ["before", "after"]
    query = random_query(rng, 4, predicates)
    n = 10 if query.query_class is QueryClass.SEQUENCE else 16
    data = random_data(rng, query, n)
    for algorithm in algorithms_for(query):
        result = execute(query, data, algorithm=algorithm, num_partitions=3)
        assert_matches_reference(query, data, result)


@pytest.mark.parametrize("seed", range(6))
def test_five_way_random_tree(seed):
    rng = random.Random(2000 + seed)
    query = random_query(rng, 5, COLOCATION)
    data = random_data(rng, query, 12)
    for algorithm in ("rccis", "all_replicate", "two_way_cascade"):
        result = execute(query, data, algorithm=algorithm, num_partitions=4)
        assert_matches_reference(query, data, result)


@pytest.mark.parametrize("seed", range(6))
def test_hybrid_with_multiple_components(seed):
    rng = random.Random(3000 + seed)
    # Two colocation components bridged by sequence edges:
    # (R1 ov R2) before (R3 ov R4) [before R5].
    conditions = [
        ("R1", rng.choice(COLOCATION), "R2"),
        ("R3", rng.choice(COLOCATION), "R4"),
        ("R2", rng.choice(["before", "after"]), "R3"),
        ("R4", "before", "R5"),
    ]
    query = IntervalJoinQuery.parse(conditions)
    data = random_data(rng, query, 10)
    for algorithm in ("all_seq_matrix", "pasm", "fcts", "all_replicate"):
        result = execute(query, data, algorithm=algorithm, num_partitions=3)
        assert_matches_reference(query, data, result)
