"""Live telemetry parity: monitoring must never change the run.

The contract of :mod:`repro.obs.live` — the heartbeat bus, progress/ETA,
the observed-straggler watchdog and the status endpoint are strictly
*passive*: with live telemetry off the run is bit-identical to the seed
behaviour, and with it on the output tuples, counters and metric
fingerprints (which exclude the ``wall``/``profile``/``live`` groups by
construction) stay bit-identical across all three executors, with or
without chaos.  The watchdog feeds the existing speculative path — the
backup is launched by *observation*, not by a fault script — and its
loser is discarded before commit.
"""

from __future__ import annotations

import threading
import time
import urllib.request

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.mapreduce.fs import InMemoryFileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.runner import run_job
from repro.mapreduce.task import Mapper, Reducer
from repro.obs import LiveConfig, StatusServer, TraceRecorder, fetch_progress

from tests.conftest import make_dataset
from tests.integration.test_fault_parity import (
    _counters_sans_faults,
    _task_span_profile,
    pinned_plan,
)

HYBRID = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
)

#: A representative slice of the paper's algorithms: the 1-bucket join,
#: a grid algorithm, and a hybrid composite.  The full ten-algorithm
#: sweep lives in test_executor_parity.py; live telemetry rides the
#: same dispatch paths, so three families pin the invariant.
CASES = [
    ("two_way", IntervalJoinQuery.parse([("R1", "overlaps", "R2")]),
     ("R1", "R2")),
    ("rccis", IntervalJoinQuery.parse(
        [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
    ), ("R1", "R2", "R3")),
    ("pasm", HYBRID, ("R1", "R2", "R3")),
]

EXECUTORS = ["serial", "threads", "processes"]

#: Fast watchdog settings for tests: a 50 ms silence is a stall.
FAST_WATCH = dict(stall_seconds=0.05, poll_interval=0.01)


def _run(algorithm, query, data, executor, live=None, **kwargs):
    recorder = TraceRecorder(live=live if live is not None else False)
    result = execute(
        query,
        data,
        algorithm=algorithm,
        num_partitions=5,
        executor=executor,
        workers=2,
        observer=recorder,
        **kwargs,
    )
    recorder.close()
    return result, recorder


def _job_counters(recorder):
    return [
        (job.name, job.counters.as_dict())
        for job in recorder.job_results
    ]


# ----------------------------------------------------------------------
# Passivity: live off == seed, live on == live off.
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "algorithm,query,relations", CASES, ids=[case[0] for case in CASES]
)
class TestLivePassivity:
    def test_live_off_by_default(self, algorithm, query, relations):
        data = make_dataset(relations, 60, seed=11)
        _, recorder = _run(algorithm, query, data, "serial")
        assert recorder.live is None
        names = {metric.name for metric in recorder.metrics.families()}
        assert not any(name.startswith("repro_live_") for name in names)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_live_on_changes_nothing(
        self, algorithm, query, relations, executor
    ):
        data = make_dataset(relations, 60, seed=11)
        plain, plain_rec = _run(algorithm, query, data, executor)
        live, live_rec = _run(
            algorithm, query, data, executor, live=LiveConfig()
        )

        assert live.tuple_ids() == plain.tuple_ids()
        assert len(plain) > 0
        assert _job_counters(live_rec) == _job_counters(plain_rec)
        # The default fingerprint excludes wall/profile/live, so the
        # monitored run hashes identically to the unmonitored one.
        assert (
            live_rec.metrics.fingerprint()
            == plain_rec.metrics.fingerprint()
        )
        assert _task_span_profile(live_rec) == _task_span_profile(plain_rec)

        # ... and the hub really did observe the run.
        snapshot = live_rec.live.snapshot()
        assert snapshot["heartbeats"] > 0
        assert snapshot["closed"] is True
        assert snapshot["progress"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Cross-executor parity with live telemetry attached.
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "algorithm,query,relations", CASES, ids=[case[0] for case in CASES]
)
def test_live_runs_identical_across_executors(algorithm, query, relations):
    data = make_dataset(relations, 60, seed=11)
    # A huge heartbeat interval suppresses the *time-throttled* mid-task
    # progress beats, leaving only the structural ones (start, forced
    # end-of-loop progress, finish) — a deterministic count that must
    # not depend on which backend ran the task.
    packs = [
        _run(
            algorithm, query, data, executor,
            live=LiveConfig(heartbeat_interval=60.0),
        )
        for executor in EXECUTORS
    ]
    tuple_ids = [result.tuple_ids() for result, _ in packs]
    assert tuple_ids[0] == tuple_ids[1] == tuple_ids[2]
    fingerprints = [rec.metrics.fingerprint() for _, rec in packs]
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]
    counters = [_job_counters(rec) for _, rec in packs]
    assert counters[0] == counters[1] == counters[2]
    # Heartbeat *counts* are executor-independent too: every task emits
    # exactly one start and one finish, and throttled progress beats are
    # record-count driven, not time driven.
    beats = [rec.live.snapshot()["heartbeats"] for _, rec in packs]
    assert beats[0] == beats[1] == beats[2]
    assert beats[0] > 0


@pytest.mark.parametrize("executor", EXECUTORS)
def test_chaos_with_live_equals_clean_without(executor):
    """Chaos + watchdog + monitoring together stay invisible."""
    data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
    clean, clean_rec = _run("rccis", CASES[1][1], data, "serial",
                            faults=False, max_attempts=1)
    chaos, chaos_rec = _run(
        "rccis", CASES[1][1], data, executor,
        live=LiveConfig(**FAST_WATCH),
        faults=pinned_plan(), max_attempts=3, speculative=True,
    )
    assert chaos.tuple_ids() == clean.tuple_ids()
    assert chaos.metrics.tasks_failed > 0
    assert _counters_sans_faults(chaos_rec) == _counters_sans_faults(
        clean_rec
    )
    assert _task_span_profile(chaos_rec) == _task_span_profile(clean_rec)


# ----------------------------------------------------------------------
# Watchdog-triggered speculation: the backup comes from observation.
# ----------------------------------------------------------------------

class TokenizeMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class StallingSumReducer(Reducer):
    """Sums per key — but reduce task 0 goes silent for ``seconds``
    before its first key, with no fault plan scripting it.  Exactly the
    observed straggler the watchdog exists to catch."""

    def __init__(self, seconds: float = 0.3) -> None:
        self.seconds = seconds

    def setup(self, context):
        if context.task_index == 0:
            time.sleep(self.seconds)

    def reduce(self, key, values, context):
        context.emit((key, sum(values)))


def _word_count_conf(reducer):
    return JobConf(
        name="wordcount",
        inputs=[InputSpec("in/doc", TokenizeMapper())],
        reducer=reducer,
        output="out",
        num_reduce_tasks=3,
    )


def _word_count_fs():
    fs = InMemoryFileSystem()
    fs.write("in/doc", ["the quick brown fox", "the lazy dog", "the fox"])
    return fs


@pytest.mark.parametrize("executor", EXECUTORS)
def test_watchdog_launches_backup_and_discards_loser(executor):
    clean_fs = _word_count_fs()
    run_job(clean_fs, _word_count_conf(StallingSumReducer(0.0)),
            faults=False)
    expected = sorted(clean_fs.read_dir("out"))

    fs = _word_count_fs()
    recorder = TraceRecorder(live=LiveConfig(**FAST_WATCH))
    result = run_job(
        fs,
        _word_count_conf(StallingSumReducer(0.3)),
        executor=executor,
        observer=recorder,
        faults=False,
        speculative=True,
    )
    recorder.close()

    # The watchdog observed the stall (no script told it to)...
    snapshot = recorder.live.snapshot()
    assert {"job": "wordcount", "phase": "reduce", "task_index": 0} in (
        snapshot["stalled"]
    )

    # ... launched a backup attempt through the speculative path ...
    backups = [
        span
        for span in recorder.spans
        if span.kind == "attempt"
        and span.attributes.get("speculative") is True
    ]
    assert len(backups) == 1
    assert backups[0].attributes["trigger"] == "watchdog"
    assert backups[0].attributes["task_index"] == 0
    assert backups[0].attributes["phase"] == "reduce"
    assert result.counters.value("faults", "speculative_wasted") == 1

    # ... and the loser was discarded before commit: outputs, part files
    # and non-fault counters are bit-identical to the clean run.
    assert sorted(fs.read_dir("out")) == expected
    assert result.counters.value("faults", "tasks_failed") == 0


def test_watchdog_needs_speculative_opt_in():
    """Monitoring alone never launches backups: without --speculative
    the stall is flagged (metrics) but nothing re-runs."""
    fs = _word_count_fs()
    recorder = TraceRecorder(live=LiveConfig(**FAST_WATCH))
    run_job(
        fs,
        _word_count_conf(StallingSumReducer(0.2)),
        executor="threads",
        observer=recorder,
        faults=False,
    )
    recorder.close()
    assert recorder.live.snapshot()["stalled"]
    assert not any(
        span.attributes.get("speculative") for span in recorder.spans
    )


# ----------------------------------------------------------------------
# The status endpoint, scraped mid-run.
# ----------------------------------------------------------------------

class DawdlingSumReducer(Reducer):
    """Sums per key, taking its time — keeps the run alive long enough
    for an HTTP scrape while emitting steady heartbeats."""

    def reduce(self, key, values, context):
        time.sleep(0.02)
        context.progress()
        context.emit((key, sum(values)))


def test_endpoint_serves_metrics_and_progress_mid_run():
    fs = _word_count_fs()
    recorder = TraceRecorder(live=LiveConfig())
    server = StatusServer(recorder, port=0)
    server.start()
    try:
        worker = threading.Thread(
            target=run_job,
            args=(fs, _word_count_conf(DawdlingSumReducer())),
            kwargs=dict(executor="threads", observer=recorder),
        )
        worker.start()
        try:
            # Poll /progress until the run is visibly in flight.
            deadline = time.monotonic() + 10.0
            snapshot = fetch_progress(server.url)
            while (
                snapshot["heartbeats"] == 0 or not snapshot["jobs"]
            ) and time.monotonic() < deadline:
                time.sleep(0.01)
                snapshot = fetch_progress(server.url)
            assert snapshot["heartbeats"] > 0
            assert snapshot["jobs"][0]["job"] == "wordcount"
            assert snapshot["closed"] is False

            # /metrics speaks Prometheus text and carries the live
            # families while tasks are still running.
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=5
            ) as response:
                body = response.read().decode("utf-8")
            assert "# TYPE repro_live_heartbeats_total counter" in body
            assert 'repro_live_tasks{job="wordcount"' in body
            assert "repro_live_run_progress_ratio" in body

            # The dashboard renders from the in-flight spans.
            with urllib.request.urlopen(server.url + "/", timeout=5) as (
                response
            ):
                page = response.read().decode("utf-8")
            assert "wordcount" in page
        finally:
            worker.join(timeout=30)
        assert not worker.is_alive()

        recorder.close()
        final = fetch_progress(server.url)
        assert final["closed"] is True
        assert final["progress"] == pytest.approx(1.0)
        # Closing publishes the ETA-vs-actual reconciliation gauge.
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=5
        ) as response:
            body = response.read().decode("utf-8")
        assert 'repro_live_run_seconds{kind="actual"}' in body
    finally:
        server.close()

    assert sorted(fs.read_dir("out"))
