"""Smoke checks for the example scripts and documentation hygiene."""

import importlib.util
import pathlib

import pytest

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {path.stem for path in EXAMPLES}
        assert {
            "quickstart",
            "environmental_monitoring",
            "network_packet_trains",
            "spatial_city_river",
            "skewed_workload_tuning",
        } <= names

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_example_imports_and_defines_main(self, path):
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # executes top level, not main()
        assert callable(getattr(module, "main", None)), path.stem


class TestDocumentationHygiene:
    def _public_modules(self):
        import pkgutil

        root = pathlib.Path(repro.__file__).parent
        for info in pkgutil.walk_packages([str(root)], prefix="repro."):
            if "._" not in info.name:
                yield info.name

    def test_every_module_has_a_docstring(self):
        import importlib

        missing = []
        for name in self._public_modules():
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_documented(self):
        import importlib
        import inspect

        missing = []
        for name in self._public_modules():
            module = importlib.import_module(name)
            for attr_name in getattr(module, "__all__", []):
                attr = getattr(module, attr_name, None)
                if inspect.isclass(attr) or inspect.isfunction(attr):
                    if not (attr.__doc__ or "").strip():
                        missing.append(f"{name}.{attr_name}")
        assert not missing, f"undocumented public API: {sorted(set(missing))}"

    def test_repo_documents_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO_ROOT / doc).is_file(), doc
        for doc in ("algorithms.md", "mapreduce.md", "api.md"):
            assert (REPO_ROOT / "docs" / doc).is_file(), doc
