"""Integration: every applicable algorithm produces exactly the reference
output on every query shape — the paper's central correctness claim."""

import pytest

from tests.conftest import assert_matches_reference, make_dataset

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery, QueryClass

# (name, conditions, applicable algorithms)
SCENARIOS = [
    (
        "2way-overlaps",
        [("R1", "overlaps", "R2")],
        ["two_way", "all_replicate", "gen_matrix"],
    ),
    (
        "2way-before",
        [("R1", "before", "R2")],
        ["two_way", "all_replicate", "all_matrix", "gen_matrix"],
    ),
    (
        "colocation-chain",
        [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")],
        ["rccis", "all_replicate", "two_way_cascade", "all_seq_matrix",
         "gen_matrix"],
    ),
    (
        "colocation-mixed",
        [("R1", "overlaps", "R2"), ("R2", "contains", "R3")],
        ["rccis", "all_replicate", "two_way_cascade", "all_seq_matrix"],
    ),
    (
        "colocation-star",
        [("R1", "contains", "R2"), ("R1", "contains", "R3")],
        ["rccis", "all_replicate", "two_way_cascade", "all_seq_matrix"],
    ),
    (
        "colocation-4chain",
        [
            ("R1", "overlaps", "R2"),
            ("R2", "contains", "R3"),
            ("R3", "overlaps", "R4"),
        ],
        ["rccis", "all_replicate", "two_way_cascade"],
    ),
    (
        "colocation-cycle",
        [
            ("R1", "overlaps", "R2"),
            ("R2", "overlaps", "R3"),
            ("R1", "overlaps", "R3"),
        ],
        ["rccis", "all_replicate", "two_way_cascade"],
    ),
    (
        "sequence-chain",
        [("R1", "before", "R2"), ("R2", "before", "R3")],
        ["all_matrix", "all_replicate", "two_way_cascade", "gen_matrix"],
    ),
    (
        "sequence-fork",
        [("R1", "before", "R2"), ("R1", "before", "R3")],
        ["all_matrix", "all_replicate", "two_way_cascade"],
    ),
    (
        "hybrid-q3",
        [
            ("R1", "overlaps", "R2"),
            ("R2", "overlaps", "R3"),
            ("R2", "before", "R4"),
            ("R4", "overlaps", "R5"),
        ],
        ["all_seq_matrix", "pasm", "fcts", "fstc", "all_replicate",
         "two_way_cascade"],
    ),
    (
        "hybrid-q4",
        [("R1", "before", "R2"), ("R1", "overlaps", "R3")],
        ["all_seq_matrix", "pasm", "fcts", "fstc", "all_replicate",
         "two_way_cascade"],
    ),
    (
        "hybrid-unsound-pruning-shape",
        [
            ("R1", "overlaps", "R2"),
            ("R2", "overlaps", "R2b"),
            ("R1", "before", "R4"),
        ],
        ["all_seq_matrix", "pasm", "fcts", "all_replicate",
         "two_way_cascade"],
    ),
    (
        "hybrid-intra-component-sequence",
        [
            ("R1", "overlaps", "R2"),
            ("R2", "overlaps", "R3"),
            ("R1", "before", "R3"),
        ],
        ["all_seq_matrix", "pasm", "all_replicate", "two_way_cascade"],
    ),
]


@pytest.mark.parametrize(
    "name,conditions,algorithms", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
@pytest.mark.parametrize("num_partitions", [1, 3, 7])
def test_algorithm_matches_reference(name, conditions, algorithms, num_partitions):
    relations = sorted({n for l, _, r in conditions for n in (l, r)})
    # Sequence joins explode combinatorially; keep those datasets small.
    has_sequence = any(p in ("before", "after") for _, p, _ in conditions)
    n = 18 if has_sequence else 30
    data = make_dataset(relations, n, seed=hash(name) % 1000, span=150.0)
    query = IntervalJoinQuery.parse(conditions)
    for algorithm in algorithms:
        result = execute(
            query, data, algorithm=algorithm, num_partitions=num_partitions
        )
        assert_matches_reference(query, data, result)


def test_planner_default_for_every_class():
    cases = {
        QueryClass.COLOCATION: [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")],
        QueryClass.SEQUENCE: [("R1", "before", "R2"), ("R2", "before", "R3")],
        QueryClass.HYBRID: [("R1", "before", "R2"), ("R1", "overlaps", "R3")],
    }
    for klass, conditions in cases.items():
        query = IntervalJoinQuery.parse(conditions)
        assert query.query_class is klass
        data = make_dataset(sorted(query.relations), 20, seed=99)
        result = execute(query, data, num_partitions=4)
        assert_matches_reference(query, data, result)


def test_point_intervals_degenerate_to_equi_join():
    """Length-0 intervals: colocation joins behave like equality joins
    (the paper's Section 6.3 observation)."""
    from repro.core.schema import Relation
    from repro.intervals.interval import Interval
    import random

    rng = random.Random(4)
    data = {
        name: Relation.of_intervals(
            name, [Interval(v, v) for v in (rng.randint(0, 15) for _ in range(25))]
        )
        for name in ("R1", "R2", "R3")
    }
    query = IntervalJoinQuery.parse(
        [("R1", "equals", "R2"), ("R2", "equals", "R3")]
    )
    for algorithm in ("rccis", "all_replicate", "two_way_cascade"):
        result = execute(query, data, algorithm=algorithm, num_partitions=4)
        assert_matches_reference(query, data, result)
