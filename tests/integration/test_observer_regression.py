"""Observation is passive: attaching a TraceRecorder changes nothing.

The acceptance bar for the observability layer — for every algorithm,
running with an observer must yield bit-identical output tuples and
counter values to running without one (which in turn is the seed
behaviour, pinned by the rest of the suite).
"""

from __future__ import annotations

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.obs import TraceRecorder

from tests.conftest import make_dataset

COLOCATION = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
SEQUENCE = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)
HYBRID = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
)

CASES = [
    ("two_way", IntervalJoinQuery.parse([("R1", "overlaps", "R2")]),
     ("R1", "R2")),
    ("rccis", COLOCATION, ("R1", "R2", "R3")),
    ("all_replicate", SEQUENCE, ("R1", "R2", "R3")),
    ("all_matrix", SEQUENCE, ("R1", "R2", "R3")),
    ("two_way_cascade", SEQUENCE, ("R1", "R2", "R3")),
    ("all_seq_matrix", HYBRID, ("R1", "R2", "R3")),
    ("pasm", HYBRID, ("R1", "R2", "R3")),
    ("gen_matrix", HYBRID, ("R1", "R2", "R3")),
    ("fcts", HYBRID, ("R1", "R2", "R3")),
    ("fstc", HYBRID, ("R1", "R2", "R3")),
]


def _metric_fingerprint(result):
    m = result.metrics
    return {
        "algorithm": m.algorithm,
        "num_cycles": m.num_cycles,
        "map_output_records": m.map_output_records,
        "shuffled_records": m.shuffled_records,
        "replicated_intervals": m.replicated_intervals,
        "replicated_pairs": m.replicated_pairs,
        "pruned_rows": m.pruned_rows,
        "comparisons": m.comparisons,
        "records_read": m.records_read,
        "output_records": m.output_records,
        "reducer_loads": dict(m.reducer_loads),
        "simulated_seconds": m.simulated_seconds,
    }


@pytest.mark.parametrize(
    "algorithm,query,names", CASES, ids=[case[0] for case in CASES]
)
def test_observed_run_is_bit_identical(algorithm, query, names):
    data = make_dataset(names, 60, seed=11)
    plain = execute(query, data, algorithm=algorithm, num_partitions=5)
    recorder = TraceRecorder()
    observed = execute(
        query, data, algorithm=algorithm, num_partitions=5, observer=recorder
    )
    assert plain.tuple_ids() == observed.tuple_ids()
    assert _metric_fingerprint(plain) == _metric_fingerprint(observed)
    # and the observer did actually see the run.
    assert recorder.find(kind="query")
    assert recorder.find(kind="job")
    assert recorder.job_results


def test_planner_empty_query_records_a_query_span():
    query = IntervalJoinQuery.parse(
        [("R1", "before", "R2"), ("R2", "before", "R1")]
    )
    data = make_dataset(("R1", "R2"), 10, seed=3)
    recorder = TraceRecorder()
    result = execute(query, data, observer=recorder)
    assert len(result) == 0
    (span,) = recorder.find(kind="query")
    assert span.attributes.get("planner_empty") is True
    assert recorder.job_results == []
