"""Profiler passivity and chaos compatibility.

Two invariants gate the data-plane profiler:

* **Passivity** — profiling must never change what a run computes.  With
  the profiler off, a recorder-observed run is bit-identical to the
  seed behaviour (no ``profile`` families, no annotations); with it on,
  output tuples, part files and the deterministic ``run``-group metric
  fingerprint are bit-identical to the unprofiled run, for every
  executor.
* **Chaos compatibility** — ``--profile`` composes with fault
  injection: a profiled chaos run still equals the clean run on
  everything outside the allowlisted ``wall``/``faults``/``profile``
  groups.
"""

from __future__ import annotations

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.obs import TraceRecorder
from repro.obs.metrics import GROUP_FAULTS, GROUP_PROFILE, GROUP_WALL

from tests.conftest import make_dataset
from tests.integration.test_fault_parity import pinned_plan

EXECUTORS = ("serial", "threads", "processes")

SEQUENCE = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)
HYBRID = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
)


def _run(query, data, executor, *, profile=False, faults=False):
    recorder = TraceRecorder(profile=profile)
    result = execute(
        query,
        data,
        num_partitions=5,
        executor=executor,
        workers=2,
        observer=recorder,
        faults=faults,
        max_attempts=3 if faults is not False else 1,
    )
    recorder.close()
    return result, recorder


@pytest.mark.parametrize("executor", EXECUTORS)
def test_profiled_run_is_bit_identical(executor):
    data = make_dataset(("R1", "R2", "R3"), 60, seed=5)
    plain, plain_rec = _run(SEQUENCE, data, executor)
    profiled, prof_rec = _run(SEQUENCE, data, executor, profile=True)

    assert profiled.tuple_ids() == plain.tuple_ids()
    assert len(plain) > 0

    # The default fingerprint (wall and profile excluded) matches; the
    # run group in particular is untouched by profiling.
    assert prof_rec.metrics.fingerprint() == plain_rec.metrics.fingerprint()

    # Part files job by job.
    assert len(prof_rec.job_results) == len(plain_rec.job_results)
    for prof_job, plain_job in zip(
        prof_rec.job_results, plain_rec.job_results
    ):
        assert prof_job.reduce_task_outputs == plain_job.reduce_task_outputs


def test_profiler_off_records_nothing():
    """Profile off means OFF: no profile families, no annotations —
    the observed run is exactly the seed behaviour."""
    data = make_dataset(("R1", "R2", "R3"), 60, seed=5)
    _, recorder = _run(SEQUENCE, data, "serial", profile=False)
    assert recorder.profiler is None
    snapshot = recorder.metrics.as_dict()
    assert not any(
        entry.get("group") == GROUP_PROFILE for entry in snapshot.values()
    )
    assert not any(
        key.startswith("profile_")
        for span in recorder.spans
        for key in span.attributes
    )


@pytest.mark.parametrize("executor", EXECUTORS)
def test_profiled_chaos_equals_clean(executor):
    """--profile + REPRO_FAULTS compose: the profiled chaos run matches
    the clean unprofiled run bit for bit outside the allowlisted
    groups."""
    data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
    clean, clean_rec = _run(HYBRID, data, "serial")
    chaos, chaos_rec = _run(
        HYBRID, data, executor, profile=True, faults=pinned_plan()
    )

    assert chaos.tuple_ids() == clean.tuple_ids()
    assert chaos.metrics.tasks_failed > 0  # the plan actually fired

    exclude = (GROUP_WALL, GROUP_FAULTS, GROUP_PROFILE)
    assert chaos_rec.metrics.fingerprint(
        exclude_groups=exclude
    ) == clean_rec.metrics.fingerprint(exclude_groups=exclude)


def test_processes_executor_reports_serialization():
    """The processes backend's pickle boundary is real and must be
    accounted: request/response bytes and parent/worker encode/decode
    seconds all non-zero."""
    data = make_dataset(("R1", "R2", "R3"), 60, seed=5)
    _, recorder = _run(SEQUENCE, data, "processes", profile=True)

    nbytes = recorder.metrics.get("repro_profile_pickle_bytes_total")
    assert nbytes is not None
    directions = {labels[2] for labels, value in nbytes.samples() if value}
    assert {"request", "response"} <= directions

    seconds = recorder.metrics.get("repro_profile_pickle_seconds_total")
    sides = {labels[2] for labels, value in seconds.samples() if value > 0}
    assert {"parent", "worker"} <= sides


def test_serial_and_threads_report_cpu_and_memory():
    data = make_dataset(("R1", "R2", "R3"), 60, seed=5)
    for executor in ("serial", "threads"):
        _, recorder = _run(SEQUENCE, data, executor, profile=True)
        cpu = recorder.metrics.get("repro_profile_cpu_seconds_total")
        assert cpu is not None, executor
        wheres = {labels[2] for labels, _ in cpu.samples()}
        assert "task" in wheres, executor
        rss = recorder.metrics.get("repro_profile_mem_rss_peak_bytes")
        assert rss is not None, executor
        assert all(value > 0 for _, value in rss.samples()), executor
