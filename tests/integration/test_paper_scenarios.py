"""Integration: end-to-end runs of the paper's concrete scenarios."""


from tests.conftest import assert_matches_reference

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.core.reference import reference_join
from repro.core.schema import Relation, Row
from repro.intervals.interval import Interval
from repro.workloads.packets import (
    TRACE_PROFILES,
    build_packet_trains,
    generate_trace,
)
from repro.workloads.spatial import (
    RectangleConfig,
    generate_rectangles,
    rectangles_intersect,
)
from repro.workloads.synthetic import SyntheticConfig, generate_relation
from repro.workloads.weather import WeatherConfig, generate_weather_episodes


class TestQ1SyntheticColocation:
    """The Table 1 query at test scale."""

    def test_q1_rccis_vs_baselines(self):
        config = lambda seed: SyntheticConfig(  # noqa: E731
            n=150, t_range=(0, 3000), length_range=(1, 40), seed=seed
        )
        data = {
            "R1": generate_relation("R1", config(1)),
            "R2": generate_relation("R2", config(2)),
            "R3": generate_relation("R3", config(3)),
        }
        q1 = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
        )
        results = {
            name: execute(q1, data, algorithm=name, num_partitions=16)
            for name in ("rccis", "all_replicate", "two_way_cascade")
        }
        reference = reference_join(q1, data)
        for result in results.values():
            assert result.same_output(reference)
        # The paper's Table 1 ordering: RCCIS replicates far fewer
        # intervals than All-Rep.
        assert (
            results["rccis"].metrics.replicated_intervals
            < results["all_replicate"].metrics.replicated_intervals
        )


class TestPacketTrainStarSelfJoin:
    """The Table 2 star self-join R ov R' and R' ov R'' at test scale."""

    def test_star_self_join(self):
        packets = generate_trace(TRACE_PROFILES["P04"], seed=5)
        trains = build_packet_trains(packets, gap_threshold=0.5)[:120]
        base = Relation.of_intervals("T1", trains)
        data = {
            "T1": base,
            "T2": base.alias("T2"),
            "T3": base.alias("T3"),
        }
        q = IntervalJoinQuery.parse(
            [("T1", "overlaps", "T2"), ("T2", "overlaps", "T3")]
        )
        result = execute(q, data, algorithm="rccis", num_partitions=8)
        assert_matches_reference(q, data, result)


class TestWeatherContainsJoin:
    """The introduction's environmental-monitoring query."""

    def test_wind_contains_temperature_and_pollution(self):
        episodes = generate_weather_episodes(
            WeatherConfig(n_regimes=25, seed=11)
        )
        q = IntervalJoinQuery.parse(
            [
                ("wind", "contains", "temperature"),
                ("wind", "contains", "pollution"),
            ]
        )
        result = execute(q, episodes, num_partitions=6)
        assert_matches_reference(q, episodes, result)
        assert len(result) > 0  # the generator plants nested episodes


class TestSpatialRectangleJoin:
    """Cities x rivers as a two-attribute Gen-Matrix join."""

    def test_rectangle_intersection_via_gen_matrix(self):
        cities = generate_rectangles(
            "cities", RectangleConfig(n=40, world=(0, 600), seed=21)
        )
        rivers = generate_rectangles(
            "rivers",
            RectangleConfig(
                n=15, world=(0, 600), width_range=(50, 400),
                height_range=(5, 30), seed=22,
            ),
        )
        data = {"cities": cities, "rivers": rivers}

        # Geometric intersection = neither rectangle strictly before/after
        # the other on either axis.  Directional Allen predicates cannot
        # express symmetric intersection in one condition, so example
        # queries use one orientation; validate against the matching
        # geometric subset.
        q = IntervalJoinQuery.parse(
            [
                ("cities.x", "overlaps", "rivers.x"),
                ("cities.y", "overlaps", "rivers.y"),
            ]
        )
        result = execute(q, data, algorithm="gen_matrix", num_partitions=4)
        assert_matches_reference(q, data, result)
        for city_row, river_row in result.tuples:
            assert rectangles_intersect(city_row, river_row)


class TestQ5GeneralQuery:
    """The Table 4 query shape (intervals + real-valued attributes)."""

    @staticmethod
    def _relation(name, n, attrs, seed):
        import random

        rng = random.Random(seed)
        rows = []
        for rid in range(n):
            start = rng.uniform(0, 500)
            values = {"I": Interval(start, start + rng.uniform(0, 60))}
            for attr in attrs:
                values[attr] = float(rng.randint(0, 3))
            rows.append(Row.make(rid, values))
        return Relation(name, rows)

    def test_q5(self):
        data = {
            "R1": self._relation("R1", 40, ["A"], 1),
            "R2": self._relation("R2", 40, ["B"], 2),
            "R3": self._relation("R3", 40, ["A", "B"], 3),
        }
        q5 = IntervalJoinQuery.parse(
            [
                ("R1.I", "before", "R2.I"),
                ("R1.I", "overlaps", "R3.I"),
                ("R1.A", "=", "R3.A"),
                ("R2.B", "=", "R3.B"),
            ]
        )
        result = execute(q5, data, num_partitions=5)
        assert result.metrics.algorithm == "gen_matrix"
        assert result.metrics.consistent_reducers == 375
        assert result.metrics.total_reducers == 625
        assert_matches_reference(q5, data, result)

    def test_real_valued_comparison_predicates(self):
        # '<' on scalars == before on their point intervals.
        data = {
            "R1": self._relation("R1", 30, ["A"], 4),
            "R2": self._relation("R2", 30, ["A"], 5),
        }
        q = IntervalJoinQuery.parse(
            [("R1.I", "overlaps", "R2.I"), ("R1.A", "<", "R2.A")]
        )
        result = execute(q, data, num_partitions=4)
        assert_matches_reference(q, data, result)


class TestExecutors:
    def test_threads_executor_matches_serial(self):
        from tests.conftest import make_dataset

        data = make_dataset(["R1", "R2", "R3"], 40, seed=33)
        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
        )
        serial = execute(q, data, algorithm="rccis", num_partitions=6)
        threaded = execute(
            q, data, algorithm="rccis", num_partitions=6, executor="threads"
        )
        assert serial.same_output(threaded)
