"""Cross-plane parity: the columnar data plane must equal the records
plane bit-for-bit.

``REPRO_DATA_PLANE=columnar`` swaps the intermediate pair stream from
tuple-at-a-time records to struct-of-arrays columns (argsort shuffle,
shared-memory reduce transport under ``processes``) — and nothing else.
These tests pin the contract for every columnar-capable algorithm on
every executor:

* identical output tuples,
* identical per-job counters, reduce-task loads and part files,
* identical deterministic metrics fingerprint,
* identical trace span set,

plus the gating behaviour around it: non-columnar jobs fall back to the
records plane silently, fault injection forces the fallback (chaos runs
stay bit-identical), and profiling the columnar plane is passive.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.obs import TraceRecorder

from tests.conftest import make_dataset
from tests.integration.test_fault_parity import pinned_plan

EXECUTORS = ("serial", "threads", "processes")

COLOCATION = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
SEQUENCE = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)

#: The columnar-capable algorithm surface: the two-way overlap join (int
#: partition keys), RCCIS (int keys, three relations) and the cascade in
#: both its key families — colocation steps route on partition indices,
#: sequence steps on 2-D grid cells.
CASES = [
    ("two_way", IntervalJoinQuery.parse([("R1", "overlaps", "R2")]),
     ("R1", "R2")),
    ("rccis", COLOCATION, ("R1", "R2", "R3")),
    ("two_way_cascade", COLOCATION, ("R1", "R2", "R3")),
    ("two_way_cascade", SEQUENCE, ("R1", "R2", "R3")),
]

CASE_IDS = ["two_way", "rccis", "cascade_colocation", "cascade_sequence"]


def _run(algorithm, query, data, executor, data_plane, **kwargs):
    recorder = TraceRecorder(profile=kwargs.pop("profile", False))
    result = execute(
        query,
        data,
        algorithm=algorithm,
        num_partitions=5,
        executor=executor,
        workers=2,
        observer=recorder,
        data_plane=data_plane,
        **kwargs,
    )
    recorder.close()
    return result, recorder


def _span_profile(recorder):
    return sorted(
        (
            span.kind,
            span.name,
            span.attributes.get("job"),
            span.attributes.get("task_index"),
        )
        for span in recorder.spans
    )


def _metrics_facts(result):
    """Every deterministic ExecutionMetrics field."""
    facts = dataclasses.asdict(result.metrics)
    facts.pop("simulated_seconds")  # host wall clock
    return facts


def _assert_cross_plane_parity(records_pack, columnar_pack):
    records_result, records_rec = records_pack
    columnar_result, columnar_rec = columnar_pack

    assert columnar_result.tuple_ids() == records_result.tuple_ids()
    assert len(records_result) > 0

    assert _metrics_facts(columnar_result) == _metrics_facts(records_result)

    assert len(columnar_rec.job_results) == len(records_rec.job_results)
    for columnar_job, records_job in zip(
        columnar_rec.job_results, records_rec.job_results
    ):
        assert columnar_job.name == records_job.name
        assert (
            columnar_job.counters.as_dict() == records_job.counters.as_dict()
        )
        assert (
            columnar_job.reduce_task_loads == records_job.reduce_task_loads
        )
        assert (
            columnar_job.reduce_task_outputs
            == records_job.reduce_task_outputs
        )

    assert (
        columnar_rec.metrics.fingerprint() == records_rec.metrics.fingerprint()
    )
    assert _span_profile(columnar_rec) == _span_profile(records_rec)


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("algorithm,query,names", CASES, ids=CASE_IDS)
def test_columnar_matches_records(algorithm, query, names, executor):
    data = make_dataset(names, 60, seed=11)
    records_pack = _run(algorithm, query, data, executor, "records")
    columnar_pack = _run(algorithm, query, data, executor, "columnar")
    _assert_cross_plane_parity(records_pack, columnar_pack)


def test_env_switch_selects_columnar(monkeypatch):
    """``REPRO_DATA_PLANE`` is the switch when no argument is passed."""
    algorithm, query, names = CASES[0][0], CASES[0][1], CASES[0][2]
    data = make_dataset(names, 50, seed=3)
    explicit = execute(
        query, data, algorithm=algorithm, num_partitions=5,
        data_plane="columnar",
    )
    monkeypatch.setenv("REPRO_DATA_PLANE", "columnar")
    from_env = execute(query, data, algorithm=algorithm, num_partitions=5)
    assert from_env.tuple_ids() == explicit.tuple_ids()
    assert _metrics_facts(from_env) == _metrics_facts(explicit)


def test_unknown_plane_rejected():
    from repro.errors import MapReduceError

    data = make_dataset(("R1", "R2"), 20, seed=1)
    query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
    with pytest.raises(MapReduceError):
        execute(query, data, num_partitions=4, data_plane="vectorised")


@pytest.mark.parametrize(
    "algorithm,query",
    [("all_replicate", SEQUENCE), ("all_matrix", SEQUENCE)],
)
def test_non_columnar_algorithms_fall_back(algorithm, query):
    """Jobs that don't implement the columnar protocol run on the
    records plane even when columnar is requested — same answer, same
    deterministic facts, no error."""
    data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
    records_pack = _run(algorithm, query, data, "serial", "records")
    columnar_pack = _run(algorithm, query, data, "serial", "columnar")
    _assert_cross_plane_parity(records_pack, columnar_pack)


@pytest.mark.parametrize("executor", ("serial", "processes"))
def test_chaos_forces_records_fallback(executor):
    """Fault injection gates the columnar plane off per job: a columnar
    chaos run retries like a records chaos run and still equals the
    clean run bit-for-bit."""
    data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
    clean, _ = _run("rccis", COLOCATION, data, executor, "columnar")
    chaos, _ = _run(
        "rccis", COLOCATION, data, executor, "columnar",
        faults=pinned_plan(), max_attempts=3,
    )
    assert chaos.tuple_ids() == clean.tuple_ids()
    assert chaos.metrics.tasks_failed > 0


@pytest.mark.parametrize("executor", EXECUTORS)
def test_profiler_is_passive_on_columnar(executor):
    """Profiling a columnar run changes nothing outside the allowlisted
    profile/wall metric groups."""
    data = make_dataset(("R1", "R2", "R3"), 60, seed=5)
    plain, plain_rec = _run("rccis", COLOCATION, data, executor, "columnar")
    profiled, prof_rec = _run(
        "rccis", COLOCATION, data, executor, "columnar", profile=True
    )
    assert profiled.tuple_ids() == plain.tuple_ids()
    assert _metrics_facts(profiled) == _metrics_facts(plain)
    assert prof_rec.metrics.fingerprint() == plain_rec.metrics.fingerprint()


@pytest.mark.parametrize("executor", EXECUTORS)
def test_shm_transport_accounted_only_under_processes(executor):
    """The profiler's shared-memory accounting fires exactly when the
    zero-copy transport is in use: the columnar plane under the
    processes executor."""
    data = make_dataset(("R1", "R2"), 60, seed=7)
    query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
    _, recorder = _run(
        "two_way", query, data, executor, "columnar", profile=True
    )
    snapshot = recorder.metrics.as_dict()
    family = snapshot.get("repro_profile_shm_bytes_total")
    samples = family["samples"] if family else []
    if executor == "processes":
        assert sum(sample["value"] for sample in samples) > 0
    else:
        assert not samples


def test_explain_surfaces_data_plane():
    from repro.obs.explain import explain_query

    query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
    plan = explain_query(query, num_partitions=4, data_plane="columnar")
    assert plan.data_plane == "columnar"
    assert "columnar" in plan.render()
    default = explain_query(query, num_partitions=4)
    assert default.data_plane == "records"
    assert default.as_dict()["data_plane"] == "records"


class TestFallbackObservability:
    """Per-job columnar fallbacks are observable, not silent: a labelled
    counter, the job span, the job result and (when the whole run fell
    back) one log warning all say *why* the records plane ran."""

    def _fallback_samples(self, recorder):
        metric = recorder.metrics.get("repro_data_plane_fallback_total")
        return dict(metric.samples()) if metric is not None else {}

    def test_protocol_gap_reason_recorded(self):
        """all_matrix implements no columnar protocol: every job falls
        back with the gate's reason, on the metric, the span and the
        job result alike."""
        data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
        _, recorder = _run(
            "all_matrix", SEQUENCE, data, "serial", "columnar"
        )
        samples = self._fallback_samples(recorder)
        assert samples
        assert all(
            reason == "mapper-no-columnar-protocol"
            for _, reason in samples
        )
        for job_result in recorder.job_results:
            assert job_result.data_plane == "records"
            assert (
                job_result.data_plane_fallback
                == "mapper-no-columnar-protocol"
            )
        job_spans = [s for s in recorder.spans if s.kind == "job"]
        assert job_spans
        assert all(
            s.attributes.get("data_plane_fallback")
            == "mapper-no-columnar-protocol"
            for s in job_spans
        )

    def test_fault_machinery_reason_recorded(self):
        data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
        _, recorder = _run(
            "rccis", COLOCATION, data, "serial", "columnar",
            faults=pinned_plan(), max_attempts=3,
        )
        samples = self._fallback_samples(recorder)
        assert samples
        assert all(
            reason == "fault-machinery-active" for _, reason in samples
        )

    def test_no_fallback_metric_when_columnar_runs(self):
        data = make_dataset(("R1", "R2"), 60, seed=11)
        query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        result, recorder = _run(
            "two_way", query, data, "serial", "columnar"
        )
        assert not self._fallback_samples(recorder)
        assert all(
            job.data_plane == "columnar" for job in recorder.job_results
        )

    def test_fallback_counter_outside_fingerprint(self):
        """The fallback counter lives in the live metric group, so the
        deterministic fingerprint stays plane-independent even when the
        columnar request degrades."""
        data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
        _, records_rec = _run(
            "all_matrix", SEQUENCE, data, "serial", "records"
        )
        _, columnar_rec = _run(
            "all_matrix", SEQUENCE, data, "serial", "columnar"
        )
        assert (
            records_rec.metrics.fingerprint()
            == columnar_rec.metrics.fingerprint()
        )

    def test_whole_run_fallback_warns_once(self, caplog):
        import logging

        data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
        with caplog.at_level(logging.WARNING, logger="repro.columnar"):
            _run("all_matrix", SEQUENCE, data, "serial", "columnar")
        warnings = [
            record
            for record in caplog.records
            if "fell back to the records plane" in record.getMessage()
        ]
        assert len(warnings) == 1
        assert "mapper-no-columnar-protocol" in warnings[0].getMessage()

    def test_partial_or_records_runs_do_not_warn(self, caplog):
        import logging

        data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
        with caplog.at_level(logging.WARNING, logger="repro.columnar"):
            _run("all_matrix", SEQUENCE, data, "serial", "records")
            _run("rccis", COLOCATION, data, "serial", "columnar")
        assert not [
            record
            for record in caplog.records
            if "fell back to the records plane" in record.getMessage()
        ]

    def test_explain_notes_wholesale_fallback(self):
        from repro.obs.explain import explain_query

        query = SEQUENCE
        plan = explain_query(
            query,
            algorithm="all_matrix",
            num_partitions=4,
            data_plane="columnar",
        )
        assert plan.data_plane_note is not None
        assert "no columnar support" in plan.data_plane_note
        assert "data plane note:" in plan.render()
        assert plan.as_dict()["data_plane_note"] == plan.data_plane_note

        capable = explain_query(
            IntervalJoinQuery.parse([("R1", "overlaps", "R2")]),
            algorithm="two_way",
            num_partitions=4,
            data_plane="columnar",
        )
        assert capable.data_plane_note is None
