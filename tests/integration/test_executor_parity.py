"""Executor parity: ``threads`` must equal ``serial`` exactly.

The thread-pool reduce executor exists to prove task code is
self-contained; these tests pin the contract — identical output tuples,
identical counters, and (with an observer attached) the identical span
set, on both a hybrid and a sequence query.
"""

from __future__ import annotations

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.obs import TraceRecorder

from tests.conftest import make_dataset

HYBRID_QUERY = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
)
SEQUENCE_QUERY = IntervalJoinQuery.parse([("R1", "before", "R2")])


def _run(query, data, executor):
    recorder = TraceRecorder()
    result = execute(
        query,
        data,
        num_partitions=6,
        executor=executor,
        observer=recorder,
    )
    return result, recorder


def _span_profile(recorder):
    """The order-insensitive span fingerprint of a run."""
    return sorted(
        (
            span.kind,
            span.name,
            span.attributes.get("job"),
            span.attributes.get("task_index"),
        )
        for span in recorder.spans
    )


@pytest.mark.parametrize(
    "query,names",
    [
        (HYBRID_QUERY, ("R1", "R2", "R3")),
        (SEQUENCE_QUERY, ("R1", "R2")),
    ],
    ids=["hybrid", "sequence"],
)
def test_threads_matches_serial(query, names):
    data = make_dataset(names, 80, seed=7)
    serial_result, serial_rec = _run(query, data, "serial")
    threads_result, threads_rec = _run(query, data, "threads")

    # same tuples
    assert serial_result.tuple_ids() == threads_result.tuple_ids()
    assert len(serial_result) > 0

    # same counters, job by job
    assert len(serial_rec.job_results) == len(threads_rec.job_results)
    for serial_job, threads_job in zip(
        serial_rec.job_results, threads_rec.job_results
    ):
        assert serial_job.name == threads_job.name
        assert (
            serial_job.counters.as_dict() == threads_job.counters.as_dict()
        )
        assert serial_job.reduce_task_loads == threads_job.reduce_task_loads
        assert (
            serial_job.reduce_task_outputs == threads_job.reduce_task_outputs
        )

    # same metric totals
    for field in (
        "num_cycles",
        "map_output_records",
        "shuffled_records",
        "comparisons",
        "output_records",
    ):
        assert getattr(serial_result.metrics, field) == getattr(
            threads_result.metrics, field
        ), field

    # same trace span set (names, kinds, job/task attribution)
    assert _span_profile(serial_rec) == _span_profile(threads_rec)
