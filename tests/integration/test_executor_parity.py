"""Executor parity: ``threads`` and ``processes`` must equal ``serial``.

The parallel executors exist to prove task code is self-contained; these
tests pin the contract — identical output tuples, identical counters,
and (with an observer attached) the identical span set — for every one
of the paper's ten algorithms under both parallel backends.
"""

from __future__ import annotations

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.obs import TraceRecorder

from tests.conftest import make_dataset

COLOCATION = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
SEQUENCE = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)
HYBRID = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
)

CASES = [
    ("two_way", IntervalJoinQuery.parse([("R1", "overlaps", "R2")]),
     ("R1", "R2")),
    ("rccis", COLOCATION, ("R1", "R2", "R3")),
    ("all_replicate", SEQUENCE, ("R1", "R2", "R3")),
    ("all_matrix", SEQUENCE, ("R1", "R2", "R3")),
    ("two_way_cascade", SEQUENCE, ("R1", "R2", "R3")),
    ("all_seq_matrix", HYBRID, ("R1", "R2", "R3")),
    ("pasm", HYBRID, ("R1", "R2", "R3")),
    ("gen_matrix", HYBRID, ("R1", "R2", "R3")),
    ("fcts", HYBRID, ("R1", "R2", "R3")),
    ("fstc", HYBRID, ("R1", "R2", "R3")),
]


def _run(algorithm, query, data, executor):
    recorder = TraceRecorder()
    result = execute(
        query,
        data,
        algorithm=algorithm,
        num_partitions=5,
        executor=executor,
        workers=2,
        observer=recorder,
    )
    return result, recorder


def _span_profile(recorder):
    """The order-insensitive span fingerprint of a run."""
    return sorted(
        (
            span.kind,
            span.name,
            span.attributes.get("job"),
            span.attributes.get("task_index"),
        )
        for span in recorder.spans
    )


def _assert_parity(serial_pack, parallel_pack):
    serial_result, serial_rec = serial_pack
    parallel_result, parallel_rec = parallel_pack

    # same tuples
    assert serial_result.tuple_ids() == parallel_result.tuple_ids()
    assert len(serial_result) > 0

    # same counters, job by job
    assert len(serial_rec.job_results) == len(parallel_rec.job_results)
    for serial_job, parallel_job in zip(
        serial_rec.job_results, parallel_rec.job_results
    ):
        assert serial_job.name == parallel_job.name
        assert (
            serial_job.counters.as_dict() == parallel_job.counters.as_dict()
        )
        assert serial_job.reduce_task_loads == parallel_job.reduce_task_loads
        assert (
            serial_job.reduce_task_outputs
            == parallel_job.reduce_task_outputs
        )

    # same metric totals
    for field in (
        "num_cycles",
        "map_output_records",
        "shuffled_records",
        "comparisons",
        "output_records",
    ):
        assert getattr(serial_result.metrics, field) == getattr(
            parallel_result.metrics, field
        ), field

    # same trace span set (names, kinds, job/task attribution)
    assert _span_profile(serial_rec) == _span_profile(parallel_rec)


@pytest.mark.parametrize("executor", ["threads", "processes"])
@pytest.mark.parametrize(
    "algorithm,query,names", CASES, ids=[case[0] for case in CASES]
)
def test_parallel_matches_serial(algorithm, query, names, executor):
    data = make_dataset(names, 60, seed=11)
    serial_pack = _run(algorithm, query, data, "serial")
    parallel_pack = _run(algorithm, query, data, executor)
    _assert_parity(serial_pack, parallel_pack)


def test_planner_choice_parity_threads():
    """Parity also holds when the planner picks the algorithm."""
    query = IntervalJoinQuery.parse(
        [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
    )
    data = make_dataset(("R1", "R2", "R3"), 80, seed=7)
    recorder_serial = TraceRecorder()
    serial = execute(
        query, data, num_partitions=6, executor="serial",
        observer=recorder_serial,
    )
    recorder_threads = TraceRecorder()
    threads = execute(
        query, data, num_partitions=6, executor="threads",
        observer=recorder_threads,
    )
    _assert_parity((serial, recorder_serial), (threads, recorder_threads))
