"""Fault parity: chaos runs must be invisible in the results.

The load-bearing invariant of :mod:`repro.faults` — any fault plan whose
per-task failures stay within the retry budget yields output tuples,
part files and counters (modulo the ``faults`` group) bit-identical to
a fault-free run, for every one of the paper's ten algorithms under
every executor.  The pinned plan below injects at least one failure in
a map phase AND a reduce phase of every algorithm (verified by
``test_pinned_plan_crashes_both_phases``), so these tests genuinely
exercise retry, not just the fast path.
"""

from __future__ import annotations

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.faults import CRASH, DELAY, FaultEvent, FaultPlan, ScriptedFaultPlan
from repro.obs import LiveConfig, TraceRecorder

from tests.conftest import make_dataset

COLOCATION = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
SEQUENCE = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)
HYBRID = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
)

CASES = [
    ("two_way", IntervalJoinQuery.parse([("R1", "overlaps", "R2")]),
     ("R1", "R2")),
    ("rccis", COLOCATION, ("R1", "R2", "R3")),
    ("all_replicate", SEQUENCE, ("R1", "R2", "R3")),
    ("all_matrix", SEQUENCE, ("R1", "R2", "R3")),
    ("two_way_cascade", SEQUENCE, ("R1", "R2", "R3")),
    ("all_seq_matrix", HYBRID, ("R1", "R2", "R3")),
    ("pasm", HYBRID, ("R1", "R2", "R3")),
    ("gen_matrix", HYBRID, ("R1", "R2", "R3")),
    ("fcts", HYBRID, ("R1", "R2", "R3")),
    ("fstc", HYBRID, ("R1", "R2", "R3")),
]

#: The pinned chaos plan: seed 2014 (the paper's year) at rates that
#: hit both phases of every algorithm while staying within the
#: max_attempts=3 budget (max_failures_per_task defaults to 2).
PINNED_PLAN = dict(crash_rate=0.35, corrupt_rate=0.2, delay_rate=0.2)
PINNED_SEED = 2014


def pinned_plan() -> FaultPlan:
    return FaultPlan(PINNED_SEED, **PINNED_PLAN)


def _run(algorithm, query, data, executor, faults, max_attempts=3):
    recorder = TraceRecorder()
    result = execute(
        query,
        data,
        algorithm=algorithm,
        num_partitions=5,
        executor=executor,
        workers=2,
        observer=recorder,
        faults=faults,
        max_attempts=max_attempts if faults is not False else 1,
    )
    return result, recorder


def _counters_sans_faults(recorder):
    merged = {}
    for job_result in recorder.job_results:
        for group, values in job_result.counters.as_dict().items():
            if group == "faults":
                continue
            bucket = merged.setdefault(group, {})
            for name, value in values.items():
                bucket[name] = bucket.get(name, 0) + value
    return merged


def _task_span_profile(recorder):
    """Fingerprint of the *committed* task spans (attempt spans carry
    the chaos history and are excluded by construction)."""
    return sorted(
        (
            span.kind,
            span.name,
            span.attributes.get("job"),
            span.attributes.get("task_index"),
        )
        for span in recorder.spans
        if span.kind != "attempt"
    )


@pytest.mark.parametrize(
    "algorithm,query,relations",
    CASES,
    ids=[case[0] for case in CASES],
)
class TestFaultParity:
    @pytest.mark.parametrize(
        "executor", ["serial", "threads", "processes"]
    )
    def test_chaos_equals_fault_free(
        self, algorithm, query, relations, executor
    ):
        data = make_dataset(relations, 60, seed=11)
        baseline, base_rec = _run(
            algorithm, query, data, "serial", faults=False
        )
        chaos, chaos_rec = _run(
            algorithm, query, data, executor, faults=pinned_plan()
        )

        # Bit-identical output tuples.
        assert chaos.tuple_ids() == baseline.tuple_ids()
        assert len(baseline) > 0

        # The plan actually fired — retries happened.
        assert chaos.metrics.tasks_failed > 0
        assert chaos.metrics.tasks_retried == chaos.metrics.tasks_failed

        # Identical counters modulo the faults group.
        assert _counters_sans_faults(chaos_rec) == _counters_sans_faults(
            base_rec
        )

        # Identical part files, job by job.
        assert len(chaos_rec.job_results) == len(base_rec.job_results)
        for chaos_job, base_job in zip(
            chaos_rec.job_results, base_rec.job_results
        ):
            assert chaos_job.reduce_task_outputs == (
                base_job.reduce_task_outputs
            )
            assert chaos_job.reduce_task_loads == base_job.reduce_task_loads

        # The committed span set matches the fault-free run; failures
        # live only in the extra kind="attempt" spans.
        assert _task_span_profile(chaos_rec) == _task_span_profile(base_rec)
        assert any(s.kind == "attempt" for s in chaos_rec.spans)

    def test_pinned_plan_crashes_both_phases(
        self, algorithm, query, relations
    ):
        """The acceptance-criteria pin: the chaos plan injects >= 1
        failure in a map phase AND a reduce phase of every algorithm."""
        data = make_dataset(relations, 60, seed=11)
        _, recorder = _run(
            algorithm, query, data, "serial", faults=pinned_plan()
        )
        failed_phases = {
            span.attributes.get("phase")
            for span in recorder.spans
            if span.kind == "attempt"
        }
        assert {"map", "reduce"} <= failed_phases


def test_watchdog_observes_injected_delay_and_launches_backup():
    """A scripted delay becomes an *observed* straggler: the live
    watchdog — not the fault script — flags the stalled attempt and
    launches the backup through the speculative path.

    Attempt 0 of reduce task 0 goes silent for the sleep cap (~50 ms
    real under ``threads``) and then crashes at commit; attempt 1 wins
    cleanly, so the plan-delayed speculation trigger does NOT apply
    (the winner was never delayed).  The only way a backup can appear
    is the watchdog's stalled-heartbeat observation."""
    query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
    data = make_dataset(("R1", "R2"), 60, seed=11)
    plan = ScriptedFaultPlan(
        {
            ("two-way", "reduce", 0, 0): (
                FaultEvent(DELAY, "setup", 0.3),
                FaultEvent(CRASH, "commit"),
            )
        }
    )
    baseline, base_rec = _run(
        "two_way", query, data, "serial", faults=False
    )

    # The watchdog races the capped ~50 ms delay sleep; under heavy
    # host load its poll thread may not get scheduled inside the
    # window, so allow a couple of fresh runs before declaring failure.
    for _ in range(3):
        recorder = TraceRecorder(
            live=LiveConfig(stall_seconds=0.02, poll_interval=0.005)
        )
        chaos = execute(
            query,
            data,
            algorithm="two_way",
            num_partitions=5,
            executor="threads",
            workers=2,
            observer=recorder,
            faults=plan,
            max_attempts=3,
            speculative=True,
        )
        recorder.close()
        backups = [
            span
            for span in recorder.spans
            if span.kind == "attempt"
            and span.attributes.get("speculative") is True
        ]
        if backups:
            break

    assert len(backups) == 1
    assert backups[0].attributes["trigger"] == "watchdog"
    assert backups[0].attributes["job"] == "two-way"
    assert backups[0].attributes["phase"] == "reduce"
    assert backups[0].attributes["task_index"] == 0

    # The backup's output was discarded before commit: tuples, part
    # files and winner-only counters equal the fault-free run.
    assert chaos.tuple_ids() == baseline.tuple_ids()
    assert _counters_sans_faults(recorder) == _counters_sans_faults(
        base_rec
    )
    assert _task_span_profile(recorder) == _task_span_profile(base_rec)
    merged = {}
    for job_result in recorder.job_results:
        for name, value in job_result.counters.group("faults").items():
            merged[name] = merged.get(name, 0) + value
    assert merged["speculative_wasted"] == 1
    assert merged["tasks_failed"] == 1  # the scripted commit crash


def test_executor_counters_identical_under_chaos():
    """Even the faults group itself is executor-independent (the plan is
    identity-keyed, so retries land on the same tasks everywhere)."""
    data = make_dataset(("R1", "R2", "R3"), 60, seed=11)
    per_executor = []
    for executor in ("serial", "threads", "processes"):
        _, recorder = _run(
            "rccis", COLOCATION, data, executor, faults=pinned_plan()
        )
        merged = {}
        for job_result in recorder.job_results:
            for group, values in job_result.counters.as_dict().items():
                bucket = merged.setdefault(group, {})
                for name, value in values.items():
                    bucket[name] = bucket.get(name, 0) + value
        per_executor.append(merged)
    assert per_executor[0] == per_executor[1] == per_executor[2]
    assert per_executor[0]["faults"]["tasks_failed"] > 0
