"""Property-based tests for temporal-set operations and histograms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import allen_histogram, peak_concurrency
from repro.intervals.allen import relation_between
from repro.intervals.coalesce import (
    clip,
    coalesce,
    gaps,
    intersect_sets,
    subtract,
    total_coverage,
)
from repro.intervals.interval import Interval


def interval_lists(max_size=25):
    def build(pairs):
        return [Interval(min(a, b), max(a, b)) for a, b in pairs]

    scalars = st.integers(min_value=0, max_value=40)
    return st.lists(st.tuples(scalars, scalars), max_size=max_size).map(build)


class TestCoalesceProperties:
    @given(interval_lists())
    @settings(max_examples=200)
    def test_coalesced_is_sorted_and_disjoint(self, intervals):
        merged = coalesce(intervals)
        for a, b in zip(merged, merged[1:]):
            assert a.end < b.start

    @given(interval_lists())
    @settings(max_examples=200)
    def test_coalesce_preserves_point_membership(self, intervals):
        merged = coalesce(intervals)
        for t in range(0, 41):
            covered = any(iv.contains_point(t) for iv in intervals)
            covered_merged = any(iv.contains_point(t) for iv in merged)
            assert covered == covered_merged

    @given(interval_lists())
    @settings(max_examples=200)
    def test_coalesce_idempotent(self, intervals):
        once = coalesce(intervals)
        assert coalesce(once) == once

    @given(interval_lists())
    @settings(max_examples=150)
    def test_coverage_upper_bound(self, intervals):
        assert total_coverage(intervals) <= sum(iv.length for iv in intervals)

    @given(interval_lists())
    @settings(max_examples=150)
    def test_gaps_are_uncovered(self, intervals):
        for gap in gaps(intervals):
            mid = (gap.start + gap.end) / 2
            if gap.length > 0:
                assert not any(
                    iv.contains_point(mid) for iv in intervals
                )


class TestSubtractIntersectProperties:
    @given(interval_lists(15), interval_lists(15))
    @settings(max_examples=150)
    def test_subtract_points(self, a, b):
        remaining = subtract(a, b)
        # Interior integer points of the result are in A and not in B's
        # interior coverage.
        for iv in remaining:
            for t in range(int(iv.start), int(iv.end) + 1):
                if iv.start < t < iv.end:
                    assert any(x.contains_point(t) for x in a)

    @given(interval_lists(15), interval_lists(15))
    @settings(max_examples=150)
    def test_intersection_commutative_coverage(self, a, b):
        assert total_coverage(intersect_sets(a, b)) == total_coverage(
            intersect_sets(b, a)
        )

    @given(interval_lists(15))
    @settings(max_examples=100)
    def test_clip_within_window(self, a):
        window = Interval(10, 30)
        for iv in clip(a, window):
            assert iv.start >= 10 and iv.end <= 30


class TestHistogramProperties:
    @given(interval_lists(15), interval_lists(15))
    @settings(max_examples=100)
    def test_histogram_total(self, left, right):
        histogram = allen_histogram(left, right)
        assert sum(histogram.values()) == len(left) * len(right)

    @given(interval_lists(12), interval_lists(12))
    @settings(max_examples=80)
    def test_histogram_matches_brute_force(self, left, right):
        histogram = allen_histogram(left, right)
        for u in left:
            for v in right:
                name = relation_between(u, v).name
                assert histogram[name] > 0

    @given(interval_lists(20))
    @settings(max_examples=100)
    def test_peak_bounded_by_size(self, intervals):
        assert 0 <= peak_concurrency(intervals) <= len(intervals)
