"""Property-based tests for partitionings and the Section-3 primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning


def partitionings():
    return st.integers(min_value=1, max_value=12).map(
        lambda parts: Partitioning.uniform(0.0, 120.0, parts)
    )


def intervals_in_range():
    def build(pair):
        a, b = sorted(pair)
        return Interval(a, b)

    scalars = st.floats(
        min_value=0.0, max_value=119.0, allow_nan=False, allow_infinity=False
    )
    return st.tuples(scalars, scalars).map(build)


class TestPrimitiveContainment:
    @given(partitionings(), intervals_in_range())
    @settings(max_examples=300)
    def test_project_is_first_split_target(self, parts, iv):
        assert parts.project(iv) == list(parts.split(iv))[0]

    @given(partitionings(), intervals_in_range())
    @settings(max_examples=300)
    def test_split_within_replicate(self, parts, iv):
        assert set(parts.split(iv)) <= set(parts.replicate(iv))

    @given(partitionings(), intervals_in_range())
    @settings(max_examples=300)
    def test_split_targets_exactly_intersecting_partitions(self, parts, iv):
        split = set(parts.split(iv))
        for index in range(len(parts)):
            part = parts.partition_interval(index)
            # Half-open semantics: the closed hull overstates the last
            # boundary point, which belongs to the next partition — except
            # for the final partition, which is closed.
            closed_hull_hits = iv.intersects(part)
            if index in split:
                assert closed_hull_hits
            elif closed_hull_hits:
                # Only permissible miss: the interval touches this
                # partition's closed hull solely at its right boundary
                # point, which half-open semantics assign to the NEXT
                # partition.
                assert iv.start == part.end and index < len(parts) - 1

    @given(partitionings(), intervals_in_range())
    @settings(max_examples=300)
    def test_replicate_is_suffix(self, parts, iv):
        targets = list(parts.replicate(iv))
        assert targets == list(range(targets[0], len(parts)))

    @given(partitionings(), intervals_in_range())
    @settings(max_examples=300)
    def test_locate_within_bounds(self, parts, iv):
        assert 0 <= parts.locate(iv.start) < len(parts)
        assert 0 <= parts.locate(iv.end) < len(parts)

    @given(partitionings(), intervals_in_range())
    @settings(max_examples=200)
    def test_crossing_consistent_with_locate(self, parts, iv):
        index = parts.project(iv)
        assert not parts.crosses_left(iv, index)
        assert parts.crosses_right(iv, index) == (parts.locate(iv.end) > index)


class TestEquiDepth:
    @given(
        st.lists(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=150)
    def test_every_point_locatable(self, points, parts_count):
        parts = Partitioning.equi_depth(points, parts_count)
        for p in points:
            assert 0 <= parts.locate(p) < len(parts)

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=30)
    def test_uniform_data_gives_even_partitions(self, parts_count):
        points = [float(i) for i in range(1000)]
        parts = Partitioning.equi_depth(points, parts_count)
        counts = [0] * len(parts)
        for p in points:
            counts[parts.locate(p)] += 1
        assert max(counts) <= 1.5 * (len(points) / len(parts))
