"""Property-based validation of the crossing-set finder.

The finder (tree AC / backtracking over presence patterns with the
late-escape condition) must agree with a brute-force enumeration of the
Section-5 definitions on random queries and random interval layouts —
this is the component RCCIS's correctness hinges on.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms.crossing import (
    CrossingSetFinder,
    has_late_escape,
    order_reachability,
)
from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning
from repro.intervals.sets import crosses, is_consistent, normalize_conditions

COLOCATION = [
    "overlaps", "overlapped_by", "contains", "during", "meets", "met_by",
    "starts", "started_by", "finishes", "finished_by", "equals",
]

PARTITIONING = Partitioning.uniform(0, 60, 3)
PARTITION = 1


def brute_force(relations, conditions, intervals):
    reach = order_reachability(list(relations), list(conditions))
    flagged = {
        name: [False] * len(intervals.get(name, [])) for name in relations
    }
    choices = {
        name: list(enumerate(intervals.get(name, []))) for name in relations
    }
    for r in range(1, len(relations) + 1):
        for subset in itertools.combinations(relations, r):
            if not has_late_escape(frozenset(subset), relations, reach):
                continue
            for combo in itertools.product(
                *(choices[name] for name in subset)
            ):
                interval_set = {
                    name: iv for name, (_, iv) in zip(subset, combo)
                }
                if is_consistent(interval_set, conditions) and crosses(
                    interval_set, conditions, PARTITIONING, PARTITION
                ):
                    for name, (position, _) in zip(subset, combo):
                        flagged[name][position] = True
    return flagged


@st.composite
def query_and_intervals(draw):
    """A random 3-relation query shape (chain, star, or triangle) plus
    random intervals intersecting the middle partition."""
    shape = draw(st.sampled_from(["chain", "star", "triangle"]))
    p1 = draw(st.sampled_from(COLOCATION))
    p2 = draw(st.sampled_from(COLOCATION))
    p3 = draw(st.sampled_from(COLOCATION))
    if shape == "chain":
        conditions = [("R1", p1, "R2"), ("R2", p2, "R3")]
    elif shape == "star":
        conditions = [("R1", p1, "R2"), ("R1", p2, "R3")]
    else:
        conditions = [
            ("R1", p1, "R2"),
            ("R2", p2, "R3"),
            ("R1", p3, "R3"),
        ]

    part = PARTITIONING.partition_interval(PARTITION)
    intervals = {}
    for name in ("R1", "R2", "R3"):
        raw = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=5, max_value=int(part.end) - 1),
                    st.integers(min_value=0, max_value=25),
                ),
                max_size=5,
            )
        )
        ivs = []
        for start, length in raw:
            iv = Interval(start, start + length)
            if iv.intersects(part):
                ivs.append(iv)
        intervals[name] = ivs
    return conditions, intervals


@given(query_and_intervals())
@settings(max_examples=150, deadline=None)
def test_finder_agrees_with_brute_force(case):
    conditions, intervals = case
    normalized = list(normalize_conditions(conditions))
    finder = CrossingSetFinder(
        ["R1", "R2", "R3"], normalized, PARTITIONING, PARTITION
    )
    masks = finder.replicable(intervals)
    expected = brute_force(("R1", "R2", "R3"), normalized, intervals)
    for name in ("R1", "R2", "R3"):
        got = [bool(x) for x in masks[name]]
        assert got == expected[name], (conditions, name, intervals)
