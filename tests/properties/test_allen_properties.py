"""Property-based tests for Allen's algebra (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals.allen import ALLEN_PREDICATES, relation_between, relations_holding
from repro.intervals.interval import Interval
from repro.core.algorithms.crossing import _predicate_matrix


def intervals(min_value=-50, max_value=50, allow_points=True):
    """Strategy for closed intervals with integer-ish endpoints (so
    equality-based relations are actually reachable)."""
    def build(pair):
        a, b = sorted(pair)
        if not allow_points and a == b:
            b = a + 1
        return Interval(a, b)

    scalars = st.integers(min_value=min_value, max_value=max_value)
    return st.tuples(scalars, scalars).map(build)


class TestExclusivityExhaustiveness:
    @given(intervals(), intervals())
    @settings(max_examples=400)
    def test_exactly_one_relation_holds(self, u, v):
        holding = relations_holding(u, v)
        assert len(holding) == 1, (
            f"{[p.name for p in holding]} all hold for {u}, {v}"
        )

    @given(intervals(), intervals())
    @settings(max_examples=200)
    def test_relation_between_consistent(self, u, v):
        predicate = relation_between(u, v)
        assert predicate.holds(u, v)


class TestInverses:
    @given(intervals(), intervals())
    @settings(max_examples=200)
    def test_inverse_is_converse(self, u, v):
        for predicate in ALLEN_PREDICATES.values():
            assert predicate.holds(u, v) == predicate.inverse.holds(v, u)

    @given(intervals(), intervals())
    @settings(max_examples=200)
    def test_relation_of_swapped_pair_is_inverse(self, u, v):
        assert relation_between(v, u).name == relation_between(u, v).inverse_name


class TestSemanticInvariants:
    @given(intervals(), intervals())
    @settings(max_examples=200)
    def test_colocation_iff_intersection(self, u, v):
        predicate = relation_between(u, v)
        assert predicate.is_colocation == u.intersects(v)

    @given(intervals(), intervals())
    @settings(max_examples=200)
    def test_enforced_orders_hold(self, u, v):
        predicate = relation_between(u, v)
        if predicate.enforces_left_first():
            assert u.start <= v.start
        if predicate.enforces_right_first():
            assert v.start <= u.start

    @given(intervals())
    @settings(max_examples=100)
    def test_equals_is_reflexive(self, u):
        assert relation_between(u, u).name == "equals"


class TestVectorizedAgreement:
    """The numpy predicate matrices must agree with the scalar truth
    functions (crossing.py keeps them in lockstep)."""

    @given(
        st.lists(intervals(), min_size=1, max_size=8),
        st.lists(intervals(), min_size=1, max_size=8),
    )
    @settings(max_examples=100)
    def test_predicate_matrix_matches_scalar(self, left, right):
        s1 = np.array([iv.start for iv in left], dtype=float)
        e1 = np.array([iv.end for iv in left], dtype=float)
        s2 = np.array([iv.start for iv in right], dtype=float)
        e2 = np.array([iv.end for iv in right], dtype=float)
        for predicate in ALLEN_PREDICATES.values():
            matrix = _predicate_matrix(predicate, s1, e1, s2, e2)
            for i, u in enumerate(left):
                for j, v in enumerate(right):
                    assert bool(matrix[i, j]) == predicate.holds(u, v), (
                        predicate.name, u, v
                    )
