"""Property-based tests for the grid engine: random share vectors and
random order topologies must never change the join output."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import ALGORITHMS
from repro.core.query import IntervalJoinQuery
from repro.core.reference import reference_join
from repro.core.schema import Relation
from repro.intervals.interval import Interval


def interval_relation(name, rows):
    return Relation.of_intervals(
        name, [Interval(s, s + l) for s, l in rows]
    )


@st.composite
def hybrid_case(draw):
    """Q4-shaped hybrid data plus a random share vector."""
    def rows(max_size=10):
        return draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=60),
                    st.integers(min_value=0, max_value=15),
                ),
                min_size=1,
                max_size=max_size,
            )
        )

    data = {
        "R1": interval_relation("R1", rows()),
        "R2": interval_relation("R2", rows(6)),
        "R3": interval_relation("R3", rows(6)),
    }
    shares = (
        draw(st.integers(min_value=1, max_value=6)),
        draw(st.integers(min_value=1, max_value=6)),
    )
    return data, shares


Q4 = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
)


class TestGridShares:
    @given(hybrid_case())
    @settings(max_examples=40, deadline=None)
    def test_any_share_vector_matches_reference(self, case):
        data, shares = case
        result = ALGORITHMS["all_seq_matrix"](grid_parts=shares).run(
            Q4, data, num_partitions=max(shares)
        )
        reference = reference_join(Q4, data)
        assert result.same_output(reference), shares

    @given(hybrid_case())
    @settings(max_examples=25, deadline=None)
    def test_gen_matrix_agrees_with_asm_on_shares(self, case):
        data, shares = case
        asm = ALGORITHMS["all_seq_matrix"](grid_parts=shares).run(
            Q4, data, num_partitions=max(shares)
        )
        gen = ALGORITHMS["gen_matrix"](grid_parts=shares).run(
            Q4, data, num_partitions=max(shares)
        )
        assert asm.same_output(gen), shares


class TestSequenceTopologies:
    @given(
        st.permutations(["before", "before", "after"]),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_sequence_star(self, predicates, rows, o):
        """Star: R1 P R2, R1 P R3, R1 P R4 with random before/after —
        mixed orders exercise asymmetric consistency constraints."""
        conditions = [
            ("R1", predicates[0], "R2"),
            ("R1", predicates[1], "R3"),
            ("R1", predicates[2], "R4"),
        ]
        query = IntervalJoinQuery.parse(conditions)
        data = {
            name: interval_relation(name, rows)
            for name in ("R1", "R2", "R3", "R4")
        }
        result = ALGORITHMS["all_matrix"](grid_parts=o).run(
            query, data, num_partitions=o
        )
        reference = reference_join(query, data)
        assert result.same_output(reference), (conditions, o)
