"""Property-based tests for the predicate join kernels.

Every registered kernel in :data:`repro.intervals.sweep.KERNELS` must
produce exactly the pair set of the brute-force nested loop over
``predicate.holds`` — including on degenerate (zero-length) intervals
and touching endpoints, where the bisect boundaries are easiest to get
wrong.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals.allen import ALLEN_PREDICATES
from repro.intervals.interval import Interval
from repro.intervals.sweep import KERNELS, join_pairs, kernel_for

# Small integer endpoints so equal/touching endpoints are common.
interval_strategy = st.tuples(
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=6),
).map(lambda t: Interval(t[0], t[0] + t[1]))

side_strategy = st.lists(interval_strategy, min_size=0, max_size=25).map(
    lambda intervals: [(iv, i) for i, iv in enumerate(intervals)]
)


def brute_force(left, right, predicate):
    return sorted(
        (li, ri)
        for liv, li in left
        for riv, ri in right
        if predicate.holds(liv, riv)
    )


def test_every_allen_predicate_has_a_kernel():
    assert set(KERNELS) == set(ALLEN_PREDICATES)
    for name in ALLEN_PREDICATES:
        assert kernel_for(name) is KERNELS[name]


@pytest.mark.parametrize("name", sorted(ALLEN_PREDICATES))
@settings(max_examples=60, deadline=None)
@given(left=side_strategy, right=side_strategy)
def test_kernel_matches_brute_force(name, left, right):
    predicate = ALLEN_PREDICATES[name]
    got = sorted(
        (li, ri) for (_, li), (_, ri) in join_pairs(left, right, predicate)
    )
    assert got == brute_force(left, right, predicate)


@pytest.mark.parametrize("name", sorted(ALLEN_PREDICATES))
def test_kernel_on_degenerate_and_touching(name):
    """Zero-length intervals and shared endpoints, exhaustively paired."""
    predicate = ALLEN_PREDICATES[name]
    intervals = [
        Interval(0, 0),
        Interval(0, 5),
        Interval(5, 5),
        Interval(5, 9),
        Interval(0, 9),
        Interval(0, 5),  # duplicate: equals must pair both
        Interval(9, 12),
        Interval(5, 12),
    ]
    left = [(iv, f"l{i}") for i, iv in enumerate(intervals)]
    right = [(iv, f"r{i}") for i, iv in enumerate(intervals)]
    got = sorted(
        (li, ri) for (_, li), (_, ri) in join_pairs(left, right, predicate)
    )
    assert got == brute_force(left, right, predicate)


@pytest.mark.parametrize("name", sorted(ALLEN_PREDICATES))
def test_kernel_empty_sides(name):
    predicate = ALLEN_PREDICATES[name]
    some = [(Interval(0, 3), 0)]
    assert list(join_pairs([], some, predicate)) == []
    assert list(join_pairs(some, [], predicate)) == []
    assert list(join_pairs([], [], predicate)) == []


@pytest.mark.parametrize("name", sorted(ALLEN_PREDICATES))
def test_kernel_yields_original_items(name):
    """Kernels must yield the caller's (interval, payload) items intact."""
    predicate = ALLEN_PREDICATES[name]
    left = [(Interval(0, 5), {"row": 1}), (Interval(5, 9), {"row": 2})]
    right = [(Interval(0, 5), {"row": 3}), (Interval(9, 12), {"row": 4})]
    for l_item, r_item in join_pairs(left, right, predicate):
        assert l_item in left
        assert r_item in right
        assert predicate.holds(l_item[0], r_item[0])
