"""Property-based tests for the Allen composition table."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals.allen import relation_between
from repro.intervals.composition import (
    FULL_SET,
    compose,
    composition_table,
    invert_set,
)
from repro.intervals.interval import Interval


def proper_intervals():
    def build(pair):
        a, b = sorted(pair)
        return Interval(a, b + 1)  # strictly positive length

    scalars = st.integers(min_value=0, max_value=30)
    return st.tuples(scalars, scalars).map(build)


class TestCompositionSoundness:
    @given(proper_intervals(), proper_intervals(), proper_intervals())
    @settings(max_examples=400)
    def test_composition_covers_reality(self, a, b, c):
        """For any concrete triple, rel(a,c) must be in the composition of
        rel(a,b) and rel(b,c)."""
        r_ab = relation_between(a, b).name
        r_bc = relation_between(b, c).name
        r_ac = relation_between(a, c).name
        assert r_ac in compose(r_ab, r_bc)

    def test_every_cell_non_empty(self):
        for cell in composition_table().values():
            assert cell

    def test_inverse_of_full_is_full(self):
        assert invert_set(FULL_SET) == FULL_SET

    @given(st.sampled_from(sorted(FULL_SET)), st.sampled_from(sorted(FULL_SET)))
    @settings(max_examples=169)
    def test_cells_are_subsets_of_full(self, r1, r2):
        assert compose(r1, r2) <= FULL_SET
