"""Property-based tests for the interval tree and sweep primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals.interval import Interval
from repro.intervals.sweep import before_pairs, intersecting_pairs
from repro.intervals.tree import IntervalTree


def interval_lists(max_size=40):
    def build(pairs):
        return [
            (Interval(min(a, b), max(a, b)), index)
            for index, (a, b) in enumerate(pairs)
        ]

    scalars = st.integers(min_value=0, max_value=50)
    return st.lists(st.tuples(scalars, scalars), max_size=max_size).map(build)


class TestTreeProperties:
    @given(interval_lists(), st.integers(min_value=-5, max_value=55))
    @settings(max_examples=200)
    def test_stabbing_matches_filter(self, items, t):
        tree = IntervalTree(items)
        got = sorted(payload for _, payload in tree.stabbing(t))
        want = sorted(
            payload for iv, payload in items if iv.contains_point(t)
        )
        assert got == want

    @given(
        interval_lists(),
        st.tuples(
            st.integers(min_value=-5, max_value=55),
            st.integers(min_value=-5, max_value=55),
        ),
    )
    @settings(max_examples=200)
    def test_overlapping_matches_filter(self, items, bounds):
        a, b = sorted(bounds)
        query = Interval(a, b)
        tree = IntervalTree(items)
        got = sorted(payload for _, payload in tree.overlapping(query))
        want = sorted(
            payload for iv, payload in items if iv.intersects(query)
        )
        assert got == want


class TestSweepProperties:
    @given(interval_lists(20), interval_lists(20))
    @settings(max_examples=150)
    def test_intersecting_pairs_exact(self, left, right):
        got = sorted((l[1], r[1]) for l, r in intersecting_pairs(left, right))
        want = sorted(
            (li, ri)
            for liv, li in left
            for riv, ri in right
            if liv.intersects(riv)
        )
        assert got == want
        assert len(got) == len(set(got))  # exactly once

    @given(interval_lists(20), interval_lists(20))
    @settings(max_examples=150)
    def test_before_pairs_exact(self, left, right):
        got = sorted((l[1], r[1]) for l, r in before_pairs(left, right))
        want = sorted(
            (li, ri)
            for liv, li in left
            for riv, ri in right
            if liv.end < riv.start
        )
        assert got == want
