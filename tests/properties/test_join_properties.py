"""Property-based tests: randomized queries and data, every algorithm
must equal the reference join — the library's master invariant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery, QueryClass
from repro.core.reference import reference_join
from repro.core.schema import Relation
from repro.intervals.interval import Interval


COLOCATION_PREDICATES = [
    "overlaps", "overlapped_by", "contains", "during", "meets", "met_by",
    "starts", "started_by", "finishes", "finished_by", "equals",
]
ALL_PREDICATES = COLOCATION_PREDICATES + ["before", "after"]


def interval_relation(name, draw_ints):
    intervals = [
        Interval(start, start + length) for start, length in draw_ints
    ]
    return Relation.of_intervals(name, intervals)


@st.composite
def chain_query_and_data(draw, predicates, max_relations=4, n_rows=12):
    """A chain query R1 P R2 P R3 ... with random predicates and random
    integer-endpoint data (integers make equality predicates reachable)."""
    m = draw(st.integers(min_value=2, max_value=max_relations))
    names = [f"R{i}" for i in range(1, m + 1)]
    conditions = []
    for left, right in zip(names, names[1:]):
        predicate = draw(st.sampled_from(predicates))
        conditions.append((left, predicate, right))
    data = {}
    for name in names:
        rows = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=60),
                    st.integers(min_value=0, max_value=15),
                ),
                min_size=1,
                max_size=n_rows,
            )
        )
        data[name] = interval_relation(name, rows)
    return IntervalJoinQuery.parse(conditions), data


class TestColocationChainEquivalence:
    @given(chain_query_and_data(COLOCATION_PREDICATES))
    @settings(max_examples=40, deadline=None)
    def test_rccis_matches_reference(self, query_and_data):
        query, data = query_and_data
        reference = reference_join(query, data)
        result = execute(query, data, algorithm="rccis", num_partitions=4)
        assert result.same_output(reference), query

    @given(chain_query_and_data(COLOCATION_PREDICATES))
    @settings(max_examples=25, deadline=None)
    def test_all_replicate_matches_reference(self, query_and_data):
        query, data = query_and_data
        reference = reference_join(query, data)
        result = execute(
            query, data, algorithm="all_replicate", num_partitions=4
        )
        assert result.same_output(reference), query

    @given(chain_query_and_data(COLOCATION_PREDICATES, max_relations=3))
    @settings(max_examples=25, deadline=None)
    def test_cascade_matches_reference(self, query_and_data):
        query, data = query_and_data
        reference = reference_join(query, data)
        result = execute(
            query, data, algorithm="two_way_cascade", num_partitions=4
        )
        assert result.same_output(reference), query


class TestArbitraryChainEquivalence:
    @given(chain_query_and_data(ALL_PREDICATES, max_relations=3, n_rows=10))
    @settings(max_examples=40, deadline=None)
    def test_planner_choice_matches_reference(self, query_and_data):
        query, data = query_and_data
        reference = reference_join(query, data)
        result = execute(query, data, num_partitions=3)
        assert result.same_output(reference), (
            query, result.metrics.algorithm
        )

    @given(chain_query_and_data(ALL_PREDICATES, max_relations=3, n_rows=8))
    @settings(max_examples=30, deadline=None)
    def test_grid_engine_matches_reference(self, query_and_data):
        query, data = query_and_data
        reference = reference_join(query, data)
        result = execute(query, data, algorithm="gen_matrix", num_partitions=3)
        assert result.same_output(reference), query

    @given(chain_query_and_data(ALL_PREDICATES, max_relations=3, n_rows=8))
    @settings(max_examples=20, deadline=None)
    def test_hybrid_algorithms_match_reference(self, query_and_data):
        query, data = query_and_data
        if query.query_class is not QueryClass.HYBRID:
            return
        reference = reference_join(query, data)
        for algorithm in ("all_seq_matrix", "pasm"):
            result = execute(
                query, data, algorithm=algorithm, num_partitions=3
            )
            assert result.same_output(reference), (query, algorithm)


class TestTwoWayEquivalence:
    @given(
        st.sampled_from(ALL_PREDICATES),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=15,
        ),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=15,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_way_all_predicates(self, predicate, left_rows, right_rows):
        data = {
            "A": interval_relation("A", left_rows),
            "B": interval_relation("B", right_rows),
        }
        query = IntervalJoinQuery.parse([("A", predicate, "B")])
        reference = reference_join(query, data)
        result = execute(query, data, algorithm="two_way", num_partitions=3)
        assert result.same_output(reference), predicate
