"""Unit tests for the sort-shuffle and partitioners."""

import pathlib
import subprocess
import sys
import zlib

import pytest

from repro.mapreduce.shuffle import (
    HashPartitioner,
    RoundRobinKeyPartitioner,
    shuffle,
    stable_hash,
)


class TestShuffle:
    def test_groups_by_key(self):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        tasks = shuffle(pairs, 1, HashPartitioner())
        groups = dict(tasks[0])
        assert groups == {"a": [1, 3], "b": [2]}

    def test_groups_sorted_within_task(self):
        pairs = [(k, 0) for k in ("z", "a", "m")]
        tasks = shuffle(pairs, 1, HashPartitioner())
        assert [key for key, _ in tasks[0]] == sorted(
            ["a", "m", "z"], key=repr
        )

    def test_same_key_same_task(self):
        pairs = [(i % 5, i) for i in range(100)]
        tasks = shuffle(pairs, 3, HashPartitioner())
        seen = {}
        for index, groups in enumerate(tasks):
            for key, _ in groups:
                assert key not in seen
                seen[key] = index
        assert len(seen) == 5

    def test_all_values_preserved(self):
        pairs = [(i % 7, i) for i in range(50)]
        tasks = shuffle(pairs, 4, HashPartitioner())
        values = [
            v for groups in tasks for _, vals in groups for v in vals
        ]
        assert sorted(values) == list(range(50))

    def test_tuple_keys(self):
        pairs = [((0, 1), "x"), ((1, 0), "y"), ((0, 1), "z")]
        tasks = shuffle(pairs, 2, HashPartitioner())
        merged = {k: v for groups in tasks for k, v in groups}
        assert merged[(0, 1)] == ["x", "z"]

    def test_invalid_partitioner_result(self):
        class Bad(HashPartitioner):
            def partition(self, key, num_tasks):
                return num_tasks  # out of range

        with pytest.raises(ValueError):
            shuffle([("a", 1)], 2, Bad())


class TestStableHash:
    def test_is_crc32_of_repr(self):
        for key in ["word", 17, (0, 1), ("R1", 4), None, 2.5]:
            expected = zlib.crc32(repr(key).encode("utf-8"))
            assert stable_hash(key) == expected

    def test_stable_across_interpreters(self):
        """Unlike ``hash(str)``, the value must not depend on the
        per-process ``PYTHONHASHSEED`` randomisation."""
        code = (
            "from repro.mapreduce.shuffle import stable_hash;"
            "print(stable_hash(('R1', 42)), stable_hash('fox'))"
        )
        outputs = set()
        for seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={
                    "PYTHONPATH": str(
                        pathlib.Path(__file__).resolve().parents[2] / "src"
                    ),
                    "PYTHONHASHSEED": seed,
                },
            )
            outputs.add(proc.stdout.strip())
        assert len(outputs) == 1
        assert outputs.pop() == (
            f"{stable_hash(('R1', 42))} {stable_hash('fox')}"
        )

    def test_partition_uses_stable_hash(self):
        partitioner = HashPartitioner()
        for key in ["a", (3, "b"), 99]:
            assert partitioner.partition(key, 7) == stable_hash(key) % 7

    def test_uncomparable_keys_shuffle(self):
        """Mixed-type keys sort by repr, so they need not be mutually
        comparable."""
        pairs = [(("a", 1), "x"), (2, "y"), ("b", "z")]
        tasks = shuffle(pairs, 2, HashPartitioner())
        merged = {k: v for groups in tasks for k, v in groups}
        assert merged == {("a", 1): ["x"], 2: ["y"], "b": ["z"]}


class TestRoundRobinKeyPartitioner:
    def test_even_spread(self):
        pairs = [(i, i) for i in range(12)]
        partitioner = RoundRobinKeyPartitioner()
        tasks = shuffle(pairs, 4, partitioner)
        assert [len(groups) for groups in tasks] == [3, 3, 3, 3]

    def test_deterministic(self):
        pairs = [(i, i) for i in range(10)]
        t1 = shuffle(pairs, 3, RoundRobinKeyPartitioner())
        t2 = shuffle(pairs, 3, RoundRobinKeyPartitioner())
        assert t1 == t2
