"""Unit tests for counters."""

from repro.mapreduce.counters import Counters


class TestCounters:
    def test_increment_and_value(self):
        c = Counters()
        c.increment("g", "n")
        c.increment("g", "n", 4)
        assert c.value("g", "n") == 5

    def test_missing_is_zero(self):
        assert Counters().value("g", "n") == 0

    def test_group_snapshot_is_copy(self):
        c = Counters()
        c.increment("g", "n", 2)
        snapshot = c.group("g")
        snapshot["n"] = 999  # type: ignore[index]
        assert c.value("g", "n") == 2

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "n", 2)
        b.increment("g", "n", 3)
        b.increment("h", "m", 1)
        a.merge(b)
        assert a.value("g", "n") == 5
        assert a.value("h", "m") == 1
        assert b.value("g", "n") == 3  # source untouched

    def test_iteration_sorted(self):
        c = Counters()
        c.increment("b", "y")
        c.increment("a", "x")
        assert list(c) == [("a", "x", 1), ("b", "y", 1)]

    def test_as_dict(self):
        c = Counters()
        c.increment("g", "n", 7)
        assert c.as_dict() == {"g": {"n": 7}}
