"""JobHistory persistence: per-task columns and backward compatibility."""

from __future__ import annotations

import json

from repro.mapreduce import Counters, InMemoryFileSystem, run_job
from repro.mapreduce.history import JobHistory, JobRecord
from repro.mapreduce.job import InputSpec, JobConf, JobResult
from repro.mapreduce.task import Mapper, Reducer


class _ModMapper(Mapper):
    def map(self, record, context):
        context.emit(record % 3, record)


class _CountReducer(Reducer):
    def reduce(self, key, values, context):
        context.counters.increment("work", "comparisons", len(values))
        context.emit((key, len(values)))


def _run() -> JobResult:
    fs = InMemoryFileSystem()
    fs.write("in/r", list(range(12)), overwrite=True)
    conf = JobConf(
        name="mod",
        inputs=[InputSpec("in/r", _ModMapper())],
        reducer=_CountReducer(),
        output="out",
        num_reduce_tasks=3,
    )
    return run_job(fs, conf)


class TestPerTaskColumns:
    def test_record_captures_task_outputs_and_comparisons(self):
        result = _run()
        record = JobRecord.from_result(result)
        assert record.reduce_task_outputs == result.reduce_task_outputs
        assert (
            record.reduce_task_comparisons == result.reduce_task_comparisons
        )
        assert sum(record.reduce_task_outputs) == record.output_records
        assert len(record.reduce_task_comparisons) == len(
            record.reduce_task_loads
        )

    def test_roundtrip_preserves_task_columns(self, tmp_path):
        history = JobHistory()
        history.record(_run())
        path = tmp_path / "history.json"
        history.save(str(path))
        loaded = JobHistory.load(str(path))
        assert len(loaded) == 1
        (original,), (reloaded,) = list(history), list(loaded)
        assert reloaded == original
        assert reloaded.reduce_task_outputs
        assert reloaded.reduce_task_comparisons


class TestBackwardCompatibility:
    def test_load_accepts_pre_1_1_history(self, tmp_path):
        """Histories written before the per-task columns existed must
        still load, with the new fields defaulting to empty."""
        old_entry = {
            "name": "legacy",
            "map_input_records": 10,
            "map_output_records": 10,
            "shuffled_records": 10,
            "reduce_input_groups": 3,
            "output_records": 3,
            "reduce_task_loads": [4, 3, 3],
            "user_counters": {"work": {"comparisons": 10}},
        }
        path = tmp_path / "old.json"
        path.write_text(json.dumps([old_entry]))
        history = JobHistory.load(str(path))
        (record,) = list(history)
        assert record.name == "legacy"
        assert record.reduce_task_outputs == []
        assert record.reduce_task_comparisons == []
        assert history.totals()["jobs"] == 1


def test_counters_snapshot_not_required_for_history():
    """The history path relies only on Counters.as_dict(); the new
    snapshot/delta helpers do not perturb it."""
    counters = Counters()
    counters.increment("work", "comparisons", 5)
    snap = counters.snapshot()
    assert snap == counters.as_dict()
    assert snap is not counters.as_dict()
