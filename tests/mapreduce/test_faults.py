"""Unit tests for deterministic fault injection and task-attempt retry.

Covers the :mod:`repro.faults` plan machinery (reproducibility is the
load-bearing property), the runner's attempt loop across lifecycle
injection points (setup, combiner, cleanup, commit), the commit
protocol under corrupt output, speculation, environment resolution, and
the observability of retries (attempt spans, fault counters, the
RunReport fault summary).
"""

import random

import pytest

from repro.errors import FaultInjectedError, MapReduceError, WorkerPoolError
from repro.faults import (
    CORRUPT,
    CRASH,
    DELAY,
    FAULTS_ENV,
    MAX_ATTEMPTS_ENV,
    SPECULATIVE_ENV,
    FaultEvent,
    FaultPlan,
    ResolvedFaults,
    ScriptedFaultPlan,
    resolve_faults,
)
from repro.mapreduce.fs import InMemoryFileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.runner import run_job
from repro.mapreduce.task import Mapper, Reducer
from repro.obs import RunReport, TraceRecorder


class TokenizeMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit((key, sum(values)))


class SumCombiner(Reducer):
    def reduce(self, key, values, context):
        context.emit(sum(values))


@pytest.fixture
def fs():
    fs = InMemoryFileSystem()
    fs.write("in/doc", ["the quick brown fox", "the lazy dog", "the fox"])
    return fs


def word_count_conf(fs, **overrides):
    defaults = dict(
        name="wordcount",
        inputs=[InputSpec("in/doc", TokenizeMapper())],
        reducer=SumReducer(),
        output="out",
        num_reduce_tasks=3,
    )
    defaults.update(overrides)
    return JobConf(**defaults)


def expected_output(fs):
    clean = InMemoryFileSystem()
    clean.write("in/doc", list(fs.read("in/doc")))
    run_job(clean, word_count_conf(clean), faults=False)
    return sorted(clean.read_dir("out"))


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(MapReduceError):
            FaultEvent("explode")

    def test_unknown_crash_point_rejected(self):
        with pytest.raises(MapReduceError):
            FaultEvent(CRASH, "teardown")

    def test_delay_carries_seconds(self):
        event = FaultEvent(DELAY, "setup", 0.5)
        assert event.seconds == 0.5


class TestFaultPlanReproducibility:
    """Same seed => same schedule: the property the whole chaos CI lane
    depends on."""

    TASKS = [
        (job, phase, index)
        for job in ("join", "mark", "wordcount")
        for phase in ("map", "reduce")
        for index in range(8)
    ]

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 2014, 123456789])
    def test_same_seed_same_schedule(self, seed):
        first = FaultPlan(seed)
        second = FaultPlan(seed)
        for job, phase, index in self.TASKS:
            assert first.schedule(job, phase, index, 4) == second.schedule(
                job, phase, index, 4
            )

    def test_schedule_ignores_global_random_state(self):
        plan = FaultPlan(42)
        random.seed(1)
        before = [plan.schedule(*task, 4) for task in self.TASKS]
        random.seed(999)
        random.random()
        after = [plan.schedule(*task, 4) for task in self.TASKS]
        assert before == after

    def test_schedule_ignores_query_order(self):
        plan = FaultPlan(42)
        forward = {
            task: plan.schedule(*task, 4) for task in self.TASKS
        }
        backward = {
            task: plan.schedule(*task, 4) for task in reversed(self.TASKS)
        }
        assert forward == backward

    def test_different_seeds_differ(self):
        a = FaultPlan(1)
        b = FaultPlan(2)
        assert any(
            a.schedule(*task, 4) != b.schedule(*task, 4)
            for task in self.TASKS
        )

    def test_failures_stop_within_budget(self):
        """Attempts past the drawn failure count carry no failure event,
        so max_attempts > max_failures_per_task always converges."""
        plan = FaultPlan(7, crash_rate=0.5, corrupt_rate=0.4)
        for job, phase, index in self.TASKS:
            schedule = plan.schedule(job, phase, index, 5)
            final = schedule[plan.max_failures_per_task:]
            assert all(
                event.kind == DELAY
                for events in final
                for event in events
            )


class TestFaultPlanParse:
    def test_bare_seed(self):
        plan = FaultPlan.parse("42")
        assert plan.seed == 42

    def test_options(self):
        plan = FaultPlan.parse(
            "7:crash=0.3,delay=0.2,corrupt=0.1,delay_seconds=0.05,"
            "max_failures=1"
        )
        assert (plan.seed, plan.crash_rate, plan.delay_rate) == (7, 0.3, 0.2)
        assert (plan.corrupt_rate, plan.max_failures_per_task) == (0.1, 1)

    def test_bad_seed_rejected(self):
        with pytest.raises(MapReduceError):
            FaultPlan.parse("not-a-seed")

    def test_unknown_option_rejected(self):
        with pytest.raises(MapReduceError):
            FaultPlan.parse("42:explosions=0.5")

    def test_bad_rates_rejected(self):
        with pytest.raises(MapReduceError):
            FaultPlan(1, crash_rate=1.5)
        with pytest.raises(MapReduceError):
            FaultPlan(1, crash_rate=0.7, corrupt_rate=0.7)


def scripted(job, phase, task_index, attempt, *events):
    return ScriptedFaultPlan({(job, phase, task_index, attempt): events})


class TestInjectionPoints:
    """Crashes scripted into user-code lifecycle hooks are retried, not
    silently swallowed."""

    def test_combiner_crash_is_retried(self, fs):
        expected = expected_output(fs)
        plan = scripted(
            "wordcount", "map", 0, 0, FaultEvent(CRASH, "combiner")
        )
        result = run_job(
            fs,
            word_count_conf(fs, combiner=SumCombiner()),
            faults=plan,
            max_attempts=2,
        )
        assert sorted(fs.read_dir("out")) == expected
        assert result.counters.value("faults", "tasks_failed") == 1
        assert result.counters.value("faults", "tasks_retried") == 1

    def test_map_cleanup_crash_is_retried(self, fs):
        expected = expected_output(fs)
        plan = scripted(
            "wordcount", "map", 0, 0, FaultEvent(CRASH, "cleanup")
        )
        result = run_job(fs, word_count_conf(fs), faults=plan, max_attempts=2)
        assert sorted(fs.read_dir("out")) == expected
        assert result.counters.value("faults", "tasks_retried") == 1

    def test_reduce_cleanup_crash_is_retried(self, fs):
        expected = expected_output(fs)
        plan = scripted(
            "wordcount", "reduce", 1, 0, FaultEvent(CRASH, "cleanup")
        )
        result = run_job(fs, word_count_conf(fs), faults=plan, max_attempts=2)
        assert sorted(fs.read_dir("out")) == expected
        assert result.counters.value("faults", "tasks_retried") == 1

    def test_corrupt_output_discarded_and_retried(self, fs):
        expected = expected_output(fs)
        plan = scripted(
            "wordcount", "reduce", 0, 0, FaultEvent(CORRUPT, "commit")
        )
        result = run_job(fs, word_count_conf(fs), faults=plan, max_attempts=2)
        assert sorted(fs.read_dir("out")) == expected
        assert result.counters.value("faults", "tasks_retried") == 1
        # Nothing uncommitted survives the run.
        assert not [
            path for path in fs.list_prefix("out/") if "_temporary" in path
        ]

    def test_crash_not_swallowed_without_budget(self, fs):
        plan = scripted(
            "wordcount", "map", 0, 0, FaultEvent(CRASH, "cleanup")
        )
        with pytest.raises(FaultInjectedError):
            run_job(fs, word_count_conf(fs), faults=plan, max_attempts=1)

    def test_budget_exhaustion_raises_original_error(self, fs):
        plan = ScriptedFaultPlan({
            ("wordcount", "map", 0, attempt): (FaultEvent(CRASH, "setup"),)
            for attempt in range(5)
        })
        with pytest.raises(FaultInjectedError) as excinfo:
            run_job(fs, word_count_conf(fs), faults=plan, max_attempts=3)
        assert excinfo.value.kind == CRASH


class TestSeededChaosParity:
    """A seeded plan within the retry budget is invisible in the output."""

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_output_and_counters_identical(self, fs, executor, seed):
        expected = expected_output(fs)
        clean = InMemoryFileSystem()
        clean.write("in/doc", list(fs.read("in/doc")))
        baseline = run_job(clean, word_count_conf(clean), faults=False)
        result = run_job(
            fs,
            word_count_conf(fs),
            executor=executor,
            workers=2,
            faults=f"{seed}:crash=0.5,corrupt=0.3,delay=0.2",
            max_attempts=3,
        )
        assert sorted(fs.read_dir("out")) == expected
        chaos_counters = {
            group: values
            for group, values in result.counters.as_dict().items()
            if group != "faults"
        }
        assert chaos_counters == baseline.counters.as_dict()

    def test_attempt_spans_and_task_spans(self, fs):
        recorder = TraceRecorder()
        result = run_job(
            fs,
            word_count_conf(fs),
            faults="7:crash=0.5,corrupt=0.3",
            max_attempts=3,
            observer=recorder,
        )
        failed = result.counters.value("faults", "tasks_failed")
        assert failed > 0
        attempts = [s for s in recorder.spans if s.kind == "attempt"]
        assert len(attempts) == failed
        for span in attempts:
            assert "attempt" in span.attributes
            assert "error" in span.attributes
        # Winning attempts keep the regular task spans: one per map
        # input plus one per reduce task, exactly as fault-free.
        tasks = [s for s in recorder.spans if s.kind == "task"]
        assert len(tasks) == 1 + 3

    def test_report_summarises_retry_overhead(self, fs):
        recorder = TraceRecorder()
        run_job(
            fs,
            word_count_conf(fs),
            faults="7:crash=0.5,corrupt=0.3",
            max_attempts=3,
            observer=recorder,
        )
        report = RunReport.from_recorder(recorder)
        assert report.faults.any_faults
        assert report.faults.tasks_failed > 0
        assert report.faults.attempt_spans == report.faults.tasks_failed
        assert "faults:" in report.render()


class TestSpeculation:
    def test_delayed_winner_gets_wasted_backup(self, fs):
        expected = expected_output(fs)
        recorder = TraceRecorder()
        result = run_job(
            fs,
            word_count_conf(fs),
            faults="7:crash=0.0,corrupt=0.0,delay=1.0",
            max_attempts=2,
            speculative=True,
            observer=recorder,
        )
        assert sorted(fs.read_dir("out")) == expected
        wasted = result.counters.value("faults", "speculative_wasted")
        assert wasted == 1 + 3  # every task is delayed under delay=1.0
        backups = [
            s
            for s in recorder.spans
            if s.kind == "attempt" and s.attributes.get("speculative")
        ]
        assert len(backups) == wasted
        assert not [
            path for path in fs.list_prefix("out/") if "_temporary" in path
        ]

    def test_speculation_off_by_default(self, fs):
        result = run_job(
            fs,
            word_count_conf(fs),
            faults="7:crash=0.0,corrupt=0.0,delay=1.0",
            max_attempts=2,
        )
        assert result.counters.value("faults", "speculative_wasted") == 0


class TestResolution:
    def test_inactive_by_default(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv(MAX_ATTEMPTS_ENV, raising=False)
        monkeypatch.delenv(SPECULATIVE_ENV, raising=False)
        resolved = resolve_faults()
        assert not resolved.active
        assert resolved.max_attempts == 1

    def test_environment_is_consulted(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "42:crash=0.25")
        monkeypatch.setenv(MAX_ATTEMPTS_ENV, "5")
        monkeypatch.setenv(SPECULATIVE_ENV, "1")
        resolved = resolve_faults()
        assert resolved.active
        assert resolved.plan.seed == 42
        assert resolved.plan.crash_rate == 0.25
        assert resolved.max_attempts == 5
        assert resolved.speculative

    def test_arguments_beat_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "42")
        monkeypatch.setenv(MAX_ATTEMPTS_ENV, "5")
        resolved = resolve_faults(faults=7, max_attempts=2, speculative=False)
        assert resolved.plan.seed == 7
        assert resolved.max_attempts == 2
        assert not resolved.speculative

    def test_false_forces_injection_off(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "42")
        resolved = resolve_faults(faults=False, max_attempts=1)
        assert resolved.plan is None

    def test_plan_implies_retry_budget(self):
        assert resolve_faults(faults=42).max_attempts > 1

    def test_jobconf_overrides_beat_arguments(self, fs):
        conf = word_count_conf(fs, max_attempts=1)
        plan = scripted(
            "wordcount", "map", 0, 0, FaultEvent(CRASH, "setup")
        )
        with pytest.raises(FaultInjectedError):
            run_job(fs, conf, faults=plan, max_attempts=4)

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(MapReduceError):
            resolve_faults(faults=object())
        with pytest.raises(MapReduceError):
            resolve_faults(max_attempts=0)
        monkeypatch.setenv(MAX_ATTEMPTS_ENV, "many")
        with pytest.raises(MapReduceError):
            resolve_faults()

    def test_backoff_grows_and_caps(self):
        resolved = ResolvedFaults(max_attempts=10)
        values = [resolved.backoff_seconds(a) for a in range(1, 10)]
        assert values == sorted(values)
        assert values[0] == resolved.backoff_base
        assert values[-1] == resolved.backoff_cap
        assert resolved.backoff_seconds(0) == 0.0


class TestWorkerPoolError:
    def test_carries_job_phase_and_pending_tasks(self):
        error = WorkerPoolError("join", "map", range(12), "worker died")
        assert error.job == "join"
        assert error.phase == "map"
        assert error.pending_tasks == tuple(range(12))
        message = str(error)
        assert "join" in message and "map" in message
        assert "worker died" in message
        assert "12 total" in message  # long index lists are truncated
        assert isinstance(error, MapReduceError)

    def test_pool_map_wraps_broken_pool(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.mapreduce import runner

        class BrokenPool:
            def map(self, fn, payloads, chunksize=1):
                raise BrokenProcessPool("boom")

            def submit(self, fn, payload):
                raise BrokenProcessPool("boom")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(runner, "_process_pool", lambda workers: BrokenPool())
        with pytest.raises(WorkerPoolError) as excinfo:
            runner._pool_map(str, [1, 2, 3], 2, "join", "map", [0, 1, 2])
        assert excinfo.value.pending_tasks == (0, 1, 2)
        with pytest.raises(WorkerPoolError) as excinfo:
            runner._submit_attempt(str, 1, 2, "join", "reduce", 5)
        assert excinfo.value.phase == "reduce"
        assert excinfo.value.pending_tasks == (5,)

    def test_fault_error_survives_pickling(self):
        import pickle

        error = FaultInjectedError(CRASH, "combiner")
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.kind, clone.point) == (CRASH, "combiner")
        assert str(clone) == str(error)
