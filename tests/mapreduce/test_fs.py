"""Unit tests for the simulated file systems."""

import pytest

from repro.errors import FileSystemError
from repro.mapreduce.fs import InMemoryFileSystem, LocalFileSystem


@pytest.fixture(params=["memory", "local"])
def fs(request, tmp_path):
    if request.param == "memory":
        return InMemoryFileSystem()
    return LocalFileSystem(str(tmp_path / "fsroot"))


class TestFileSystemContract:
    def test_write_read_roundtrip(self, fs):
        fs.write("dir/file", [1, 2, 3])
        assert list(fs.read("dir/file")) == [1, 2, 3]

    def test_write_returns_count(self, fs):
        assert fs.write("f", ["a", "b"]) == 2

    def test_overwrite_protection(self, fs):
        fs.write("f", [1])
        with pytest.raises(FileSystemError):
            fs.write("f", [2])
        fs.write("f", [2], overwrite=True)
        assert list(fs.read("f")) == [2]

    def test_read_missing_raises(self, fs):
        with pytest.raises(FileSystemError):
            list(fs.read("nope"))

    def test_exists_and_delete(self, fs):
        fs.write("f", [1])
        assert fs.exists("f")
        fs.delete("f")
        assert not fs.exists("f")
        fs.delete("f")  # idempotent

    def test_list_prefix(self, fs):
        fs.write("out/part-00000", [1])
        fs.write("out/part-00001", [2])
        fs.write("other", [3])
        assert fs.list_prefix("out/") == ["out/part-00000", "out/part-00001"]

    def test_read_dir(self, fs):
        fs.append_partition("out", 0, [1, 2])
        fs.append_partition("out", 1, [3])
        assert sorted(fs.read_dir("out")) == [1, 2, 3]

    def test_read_dir_single_file_fallback(self, fs):
        fs.write("solo", [5, 6])
        assert sorted(fs.read_dir("solo")) == [5, 6]

    def test_count(self, fs):
        fs.append_partition("out", 0, list(range(7)))
        assert fs.count("out") == 7

    def test_empty_file(self, fs):
        fs.write("empty", [])
        assert list(fs.read("empty")) == []


class TestLocalFileSystem:
    def test_persists_across_instances(self, tmp_path):
        root = str(tmp_path / "persist")
        LocalFileSystem(root).write("a/b", [{"k": 1}])
        again = LocalFileSystem(root)
        assert list(again.read("a/b")) == [{"k": 1}]

    def test_path_escape_rejected(self, tmp_path):
        fs = LocalFileSystem(str(tmp_path / "jail"))
        with pytest.raises(FileSystemError):
            fs.write("../escape", [1])

    def test_custom_codec(self, tmp_path):
        fs = LocalFileSystem(
            str(tmp_path / "codec"),
            encode=lambda pair: list(pair),
            decode=lambda lst: tuple(lst),
        )
        fs.write("f", [(1, 2), (3, 4)])
        assert list(fs.read("f")) == [(1, 2), (3, 4)]


class TestCommitProtocol:
    """Hadoop-style two-phase task commit: stage under ``_temporary``,
    promote the winner, discard everything else."""

    def test_staged_attempt_invisible_to_readers(self, fs):
        fs.append_partition("out", 0, [1, 2])
        fs.write_attempt("out", 1, 0, [99])
        assert sorted(fs.read_dir("out")) == [1, 2]
        assert fs.count("out") == 2

    def test_promote_publishes_part_file(self, fs):
        fs.write_attempt("out", 3, 1, ["a", "b"])
        dst = fs.promote_attempt("out", 3, 1)
        assert dst == "out/part-00003"
        assert list(fs.read("out/part-00003")) == ["a", "b"]
        assert not fs.exists(fs.task_attempt_path("out", 3, 1))

    def test_promote_discards_losing_attempts(self, fs):
        fs.write_attempt("out", 0, 0, ["stale"])
        fs.write_attempt("out", 0, 1, ["fresh"])
        fs.promote_attempt("out", 0, 1)
        assert sorted(fs.read_dir("out")) == ["fresh"]
        assert not any(
            "_temporary" in path for path in fs.list_prefix("out/")
        )

    def test_promote_missing_attempt_raises(self, fs):
        with pytest.raises(FileSystemError):
            fs.promote_attempt("out", 0, 0)

    def test_discard_attempt(self, fs):
        fs.write_attempt("out", 0, 0, [1])
        fs.discard_attempt("out", 0, 0)
        assert not fs.exists(fs.task_attempt_path("out", 0, 0))
        fs.discard_attempt("out", 0, 0)  # idempotent

    def test_rename_moves_and_replaces(self, fs):
        fs.write("src", [1, 2])
        fs.write("dst", [9])
        fs.rename("src", "dst")
        assert not fs.exists("src")
        assert list(fs.read("dst")) == [1, 2]

    def test_rename_missing_raises(self, fs):
        with pytest.raises(FileSystemError):
            fs.rename("nope", "dst")

    def test_hidden_components_filtered_everywhere(self, fs):
        fs.write("out/part-00000", [1])
        fs.write("out/_SUCCESS", ["marker"])
        fs.write("out/_logs/history", ["log"])
        assert sorted(fs.read_dir("out")) == [1]

    def test_append_partition_routes_through_protocol(self, fs):
        fs.append_partition("out", 0, [1, 2, 3])
        assert list(fs.read("out/part-00000")) == [1, 2, 3]
        assert not any(
            "_temporary" in path for path in fs.list_prefix("out/")
        )
