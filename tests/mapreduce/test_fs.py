"""Unit tests for the simulated file systems."""

import pytest

from repro.errors import FileSystemError
from repro.mapreduce.fs import InMemoryFileSystem, LocalFileSystem


@pytest.fixture(params=["memory", "local"])
def fs(request, tmp_path):
    if request.param == "memory":
        return InMemoryFileSystem()
    return LocalFileSystem(str(tmp_path / "fsroot"))


class TestFileSystemContract:
    def test_write_read_roundtrip(self, fs):
        fs.write("dir/file", [1, 2, 3])
        assert list(fs.read("dir/file")) == [1, 2, 3]

    def test_write_returns_count(self, fs):
        assert fs.write("f", ["a", "b"]) == 2

    def test_overwrite_protection(self, fs):
        fs.write("f", [1])
        with pytest.raises(FileSystemError):
            fs.write("f", [2])
        fs.write("f", [2], overwrite=True)
        assert list(fs.read("f")) == [2]

    def test_read_missing_raises(self, fs):
        with pytest.raises(FileSystemError):
            list(fs.read("nope"))

    def test_exists_and_delete(self, fs):
        fs.write("f", [1])
        assert fs.exists("f")
        fs.delete("f")
        assert not fs.exists("f")
        fs.delete("f")  # idempotent

    def test_list_prefix(self, fs):
        fs.write("out/part-00000", [1])
        fs.write("out/part-00001", [2])
        fs.write("other", [3])
        assert fs.list_prefix("out/") == ["out/part-00000", "out/part-00001"]

    def test_read_dir(self, fs):
        fs.append_partition("out", 0, [1, 2])
        fs.append_partition("out", 1, [3])
        assert sorted(fs.read_dir("out")) == [1, 2, 3]

    def test_read_dir_single_file_fallback(self, fs):
        fs.write("solo", [5, 6])
        assert sorted(fs.read_dir("solo")) == [5, 6]

    def test_count(self, fs):
        fs.append_partition("out", 0, list(range(7)))
        assert fs.count("out") == 7

    def test_empty_file(self, fs):
        fs.write("empty", [])
        assert list(fs.read("empty")) == []


class TestLocalFileSystem:
    def test_persists_across_instances(self, tmp_path):
        root = str(tmp_path / "persist")
        LocalFileSystem(root).write("a/b", [{"k": 1}])
        again = LocalFileSystem(root)
        assert list(again.read("a/b")) == [{"k": 1}]

    def test_path_escape_rejected(self, tmp_path):
        fs = LocalFileSystem(str(tmp_path / "jail"))
        with pytest.raises(FileSystemError):
            fs.write("../escape", [1])

    def test_custom_codec(self, tmp_path):
        fs = LocalFileSystem(
            str(tmp_path / "codec"),
            encode=lambda pair: list(pair),
            decode=lambda lst: tuple(lst),
        )
        fs.write("f", [(1, 2), (3, 4)])
        assert list(fs.read("f")) == [(1, 2), (3, 4)]
