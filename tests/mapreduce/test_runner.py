"""Unit tests for job execution (the classic word-count, plus lifecycle,
counter semantics, and executor/worker resolution)."""

import pytest

from repro.errors import MapReduceError
from repro.mapreduce.fs import InMemoryFileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.runner import (
    EXECUTOR_ENV,
    EXECUTORS,
    WORKERS_ENV,
    resolve_executor,
    resolve_workers,
    run_job,
)
from repro.mapreduce.task import Mapper, Reducer


class TokenizeMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit((key, sum(values)))


class SumCombiner(Reducer):
    """Combiner variant: emits the partial sum as the new *value* (a
    combiner's emissions feed the shuffle under the same key)."""

    def reduce(self, key, values, context):
        context.emit(sum(values))


class CountGroupReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit((key, len(values)))


class LifecycleMapper(Mapper):
    def __init__(self):
        self.events = []

    def setup(self, context):
        self.events.append("setup")

    def map(self, record, context):
        self.events.append("map")
        context.emit(0, record)

    def cleanup(self, context):
        self.events.append("cleanup")


@pytest.fixture
def fs():
    fs = InMemoryFileSystem()
    fs.write("in/doc", ["the quick brown fox", "the lazy dog", "the fox"])
    return fs


def word_count_conf(fs, **overrides):
    defaults = dict(
        name="wordcount",
        inputs=[InputSpec("in/doc", TokenizeMapper())],
        reducer=SumReducer(),
        output="out",
        num_reduce_tasks=3,
    )
    defaults.update(overrides)
    return JobConf(**defaults)


class TestWordCount:
    def test_output(self, fs):
        run_job(fs, word_count_conf(fs))
        counts = dict(fs.read_dir("out"))
        assert counts == {
            "the": 3,
            "quick": 1,
            "brown": 1,
            "fox": 2,
            "lazy": 1,
            "dog": 1,
        }

    def test_framework_counters(self, fs):
        result = run_job(fs, word_count_conf(fs))
        c = result.counters
        assert c.value("framework", "map_input_records") == 3
        assert c.value("framework", "map_output_records") == 9
        assert c.value("framework", "shuffle_records") == 9
        assert c.value("framework", "reduce_input_groups") == 6
        assert result.output_records == 6

    def test_logical_reducer_loads(self, fs):
        result = run_job(fs, word_count_conf(fs))
        assert result.logical_reducer_loads["the"] == 3
        assert sum(result.logical_reducer_loads.values()) == 9

    def test_reduce_task_loads_cover_everything(self, fs):
        result = run_job(fs, word_count_conf(fs))
        assert sum(result.reduce_task_loads) == 9
        assert len(result.reduce_task_loads) == 3

    def test_threads_executor_same_output(self, fs):
        run_job(fs, word_count_conf(fs, output="out-serial"))
        run_job(
            fs, word_count_conf(fs, output="out-threads"), executor="threads"
        )
        assert sorted(fs.read_dir("out-serial")) == sorted(
            fs.read_dir("out-threads")
        )

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_parallel_executor_bit_identical(self, fs, executor):
        serial = run_job(fs, word_count_conf(fs, output="out-serial"))
        parallel = run_job(
            fs,
            word_count_conf(fs, output=f"out-{executor}"),
            executor=executor,
            workers=2,
        )
        assert sorted(fs.read_dir("out-serial")) == sorted(
            fs.read_dir(f"out-{executor}")
        )
        assert serial.counters.as_dict() == parallel.counters.as_dict()
        assert serial.reduce_task_loads == parallel.reduce_task_loads
        assert serial.reduce_task_outputs == parallel.reduce_task_outputs

    def test_unknown_executor(self, fs):
        with pytest.raises(MapReduceError):
            run_job(fs, word_count_conf(fs), executor="gpu")

    def test_no_inputs_rejected(self, fs):
        conf = word_count_conf(fs)
        conf.inputs = []
        with pytest.raises(MapReduceError):
            run_job(fs, conf)

    def test_zero_reduce_tasks_rejected(self, fs):
        conf = word_count_conf(fs, num_reduce_tasks=0)
        with pytest.raises(MapReduceError):
            run_job(fs, conf)


class TestCombiner:
    def test_combiner_reduces_shuffle_volume(self, fs):
        plain = run_job(fs, word_count_conf(fs, output="out1"))
        combined = run_job(
            fs, word_count_conf(fs, output="out2", combiner=SumCombiner())
        )
        assert dict(fs.read_dir("out1")) == dict(fs.read_dir("out2"))
        assert combined.shuffled_records < plain.shuffled_records
        assert combined.counters.value("framework", "combine_input_records") == 9


class TestLifecycle:
    def test_setup_cleanup_once_per_task(self):
        fs = InMemoryFileSystem()
        fs.write("in", ["a", "b"])
        mapper = LifecycleMapper()
        conf = JobConf(
            name="lifecycle",
            inputs=[InputSpec("in", mapper)],
            reducer=CountGroupReducer(),
            output="out",
            num_reduce_tasks=1,
        )
        # Pinned to serial and fault-free: the assertion watches
        # parent-side mutation of the mapper instance, which neither a
        # process worker nor a fault-mode attempt (each attempt runs a
        # pristine deep copy) can perform.
        run_job(fs, conf, executor="serial", faults=False)
        assert mapper.events == ["setup", "map", "map", "cleanup"]

    def test_multiple_inputs_under_processes(self):
        fs = InMemoryFileSystem()
        fs.write("in/a", ["x y"])
        fs.write("in/b", ["y z"])
        conf = JobConf(
            name="multi",
            inputs=[
                InputSpec("in/a", TokenizeMapper()),
                InputSpec("in/b", TokenizeMapper()),
            ],
            reducer=SumReducer(),
            output="out",
            num_reduce_tasks=2,
        )
        run_job(fs, conf, executor="processes", workers=2)
        assert dict(fs.read_dir("out")) == {"x": 1, "y": 2, "z": 1}

    def test_multiple_inputs_each_get_own_mapper_run(self):
        fs = InMemoryFileSystem()
        fs.write("in/a", ["x y"])
        fs.write("in/b", ["y z"])
        conf = JobConf(
            name="multi",
            inputs=[
                InputSpec("in/a", TokenizeMapper()),
                InputSpec("in/b", TokenizeMapper()),
            ],
            reducer=SumReducer(),
            output="out",
            num_reduce_tasks=2,
        )
        run_job(fs, conf)
        assert dict(fs.read_dir("out")) == {"x": 1, "y": 2, "z": 1}


class TestResolution:
    def test_executor_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert resolve_executor(None) == "serial"

    def test_executor_env_fallback(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "threads")
        assert resolve_executor(None) == "threads"
        # An explicit argument always wins over the environment.
        assert resolve_executor("processes") == "processes"

    def test_executor_names(self):
        assert EXECUTORS == ("serial", "threads", "processes")
        for name in EXECUTORS:
            assert resolve_executor(name) == name

    def test_unknown_executor_rejected(self, monkeypatch):
        with pytest.raises(MapReduceError):
            resolve_executor("gpu")
        monkeypatch.setenv(EXECUTOR_ENV, "quantum")
        with pytest.raises(MapReduceError):
            resolve_executor(None)

    def test_workers_default_positive(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) >= 1

    def test_workers_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(5) == 5

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "two", True])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(MapReduceError):
            resolve_workers(bad)

    def test_invalid_workers_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "zero")
        with pytest.raises(MapReduceError):
            resolve_workers(None)

    def test_run_job_rejects_bad_workers(self, monkeypatch):
        fs = InMemoryFileSystem()
        fs.write("in/doc", ["a b"])
        conf = word_count_conf(fs)
        with pytest.raises(MapReduceError):
            run_job(fs, conf, executor="threads", workers=0)
