"""Unit tests for multi-job pipelines."""

import pytest

from repro.mapreduce.fs import InMemoryFileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.pipeline import Pipeline
from repro.mapreduce.task import Mapper, Reducer


class EmitLengthMapper(Mapper):
    def map(self, record, context):
        context.emit(len(record), record)


class CountReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit((key, len(values)))


class PassThroughMapper(Mapper):
    def map(self, record, context):
        context.emit(record[0], record[1])


class MaxReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit((key, max(values)))


@pytest.fixture
def fs():
    fs = InMemoryFileSystem()
    fs.write("in", ["aa", "b", "cc", "ddd", "e"])
    return fs


class TestPipeline:
    def test_two_stage_chain(self, fs):
        pipeline = Pipeline(fs)
        pipeline.run(
            JobConf(
                name="stage1",
                inputs=[InputSpec("in", EmitLengthMapper())],
                reducer=CountReducer(),
                output="stage1",
                num_reduce_tasks=2,
            )
        )
        pipeline.run(
            JobConf(
                name="stage2",
                inputs=[InputSpec("stage1", PassThroughMapper())],
                reducer=MaxReducer(),
                output="stage2",
                num_reduce_tasks=1,
            )
        )
        result = pipeline.result
        assert result.num_cycles == 2
        assert result.final_output == "stage2"
        # lengths: 2 -> 2 strings, 1 -> 2 strings, 3 -> 1 string
        assert dict(fs.read_dir("stage2")) == {1: 2, 2: 2, 3: 1}

    def test_counters_accumulate_across_jobs(self, fs):
        pipeline = Pipeline(fs)
        conf1 = JobConf(
            name="s1",
            inputs=[InputSpec("in", EmitLengthMapper())],
            reducer=CountReducer(),
            output="s1",
            num_reduce_tasks=1,
        )
        pipeline.run(conf1)
        conf2 = JobConf(
            name="s2",
            inputs=[InputSpec("s1", PassThroughMapper())],
            reducer=MaxReducer(),
            output="s2",
            num_reduce_tasks=1,
        )
        pipeline.run(conf2)
        assert pipeline.result.total_map_output_records == 5 + 3
        assert (
            pipeline.result.counters.value("framework", "map_input_records")
            == 5 + 3
        )

    def test_run_all(self, fs):
        pipeline = Pipeline(fs)
        confs = [
            JobConf(
                name="only",
                inputs=[InputSpec("in", EmitLengthMapper())],
                reducer=CountReducer(),
                output="only",
                num_reduce_tasks=1,
            )
        ]
        result = pipeline.run_all(confs)
        assert result.num_cycles == 1

    def test_empty_pipeline(self, fs):
        pipeline = Pipeline(fs)
        assert pipeline.result.num_cycles == 0
        assert pipeline.result.final_output is None
