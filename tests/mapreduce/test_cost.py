"""Unit tests for the analytic cost model."""

import pytest

from repro.mapreduce.counters import Counters
from repro.mapreduce.cost import CostModel
from repro.mapreduce.job import JobResult
from repro.mapreduce.pipeline import PipelineResult


def make_job(
    reads=0, shuffled=0, comparisons=0, outputs=0, loads=(0,)
) -> JobResult:
    counters = Counters()
    counters.increment("framework", "map_input_records", reads)
    counters.increment("framework", "shuffle_records", shuffled)
    counters.increment("work", "comparisons", comparisons)
    return JobResult(
        name="j",
        counters=counters,
        reduce_task_loads=list(loads),
        logical_reducer_loads={},
        output="out",
        output_records=outputs,
    )


class TestCostModel:
    def test_empty_job_costs_overhead_only(self):
        model = CostModel(per_cycle_overhead=5.0)
        assert model.job_time(make_job()) == pytest.approx(5.0)

    def test_shuffle_dominates_reads(self):
        model = CostModel()
        read_heavy = make_job(reads=1_000_000)
        shuffle_heavy = make_job(shuffled=1_000_000)
        assert model.job_time(shuffle_heavy) > model.job_time(read_heavy)

    def test_straggler_receive_dominates_balanced_network(self):
        model = CostModel(per_cycle_overhead=0.0, parallelism=4)
        balanced = make_job(shuffled=100, loads=(25, 25, 25, 25))
        skewed = make_job(shuffled=100, loads=(97, 1, 1, 1))
        assert model.job_time(skewed) > model.job_time(balanced)

    def test_comparisons_charged_proportionally_to_straggler(self):
        model = CostModel(per_cycle_overhead=0.0)
        even = make_job(comparisons=1_000_000, loads=(50, 50))
        hot = make_job(comparisons=1_000_000, loads=(99, 1))
        assert model.job_time(hot) > model.job_time(even)

    def test_output_parallelises_when_balanced(self):
        model = CostModel(per_cycle_overhead=0.0, parallelism=10)
        balanced = make_job(outputs=1_000_000, loads=(10,) * 10)
        single = make_job(outputs=1_000_000, loads=(100,))
        assert model.job_time(balanced) < model.job_time(single)

    def test_parallelism_speeds_up_map_phase(self):
        slow = CostModel(per_cycle_overhead=0.0, parallelism=1)
        fast = CostModel(per_cycle_overhead=0.0, parallelism=16)
        job = make_job(reads=1_000_000)
        assert fast.job_time(job) < slow.job_time(job)

    def test_pipeline_time_sums_jobs(self):
        model = CostModel(per_cycle_overhead=7.0)
        result = PipelineResult(jobs=[make_job(), make_job()])
        assert model.pipeline_time(result) == pytest.approx(14.0)

    def test_more_cycles_cost_more(self):
        model = CostModel()
        one = PipelineResult(jobs=[make_job(shuffled=100)])
        two = PipelineResult(jobs=[make_job(shuffled=50), make_job(shuffled=50)])
        assert model.pipeline_time(two) > model.pipeline_time(one)
