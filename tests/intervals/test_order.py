"""Unit tests for less-than-order utilities."""

import pytest

from repro.errors import ReproError
from repro.intervals.interval import Interval
from repro.intervals.order import (
    leftmost,
    leftmost_all,
    less_than,
    rightmost,
    rightmost_all,
    sort_by_order,
)


class TestLessThan:
    def test_basic(self):
        assert less_than(Interval(1, 100), Interval(2, 3))
        assert not less_than(Interval(2, 3), Interval(1, 100))

    def test_equal_starts_mutual(self):
        a, b = Interval(5, 6), Interval(5, 99)
        assert less_than(a, b) and less_than(b, a)


class TestSorting:
    def test_sort_by_order(self):
        intervals = [Interval(3, 4), Interval(1, 9), Interval(1, 2)]
        assert sort_by_order(intervals) == [
            Interval(1, 2),
            Interval(1, 9),
            Interval(3, 4),
        ]


class TestExtremes:
    def test_leftmost_rightmost(self):
        intervals = [Interval(3, 4), Interval(1, 9), Interval(7, 8)]
        assert leftmost(intervals) == Interval(1, 9)
        assert rightmost(intervals) == Interval(7, 8)

    def test_ties(self):
        intervals = [Interval(1, 2), Interval(1, 5), Interval(3, 4)]
        assert sorted(leftmost_all(intervals)) == [
            Interval(1, 2),
            Interval(1, 5),
        ]
        assert rightmost_all(intervals) == [Interval(3, 4)]

    def test_key_function(self):
        items = [("a", Interval(5, 6)), ("b", Interval(1, 2))]
        assert leftmost(items, key=lambda t: t[1])[0] == "b"
        assert rightmost(items, key=lambda t: t[1])[0] == "a"

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            leftmost([])
        with pytest.raises(ReproError):
            rightmost_all([])
