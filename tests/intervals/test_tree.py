"""Unit tests for the interval tree, cross-checked against brute force."""

import random

import pytest

from repro.intervals.interval import Interval
from repro.intervals.tree import IntervalTree


def brute_overlapping(items, query):
    return sorted(
        (payload for iv, payload in items if iv.intersects(query))
    )


def brute_stabbing(items, t):
    return sorted(
        (payload for iv, payload in items if iv.contains_point(t))
    )


@pytest.fixture
def random_items():
    rng = random.Random(42)
    items = []
    for index in range(300):
        start = rng.uniform(0, 100)
        end = start + rng.uniform(0, 15)
        items.append((Interval(start, end), index))
    return items


class TestIntervalTree:
    def test_empty_tree(self):
        tree = IntervalTree([])
        assert len(tree) == 0
        assert list(tree.overlapping(Interval(0, 10))) == []
        assert list(tree.stabbing(5)) == []

    def test_single_item(self):
        tree = IntervalTree([(Interval(2, 5), "x")])
        assert [p for _, p in tree.overlapping(Interval(4, 9))] == ["x"]
        assert [p for _, p in tree.overlapping(Interval(6, 9))] == []
        assert [p for _, p in tree.stabbing(2)] == ["x"]
        assert [p for _, p in tree.stabbing(5)] == ["x"]
        assert [p for _, p in tree.stabbing(5.01)] == []

    def test_duplicates_all_reported(self):
        tree = IntervalTree([(Interval(0, 5), "a"), (Interval(0, 5), "b")])
        assert sorted(p for _, p in tree.overlapping(Interval(1, 2))) == [
            "a",
            "b",
        ]

    def test_overlapping_matches_brute_force(self, random_items):
        tree = IntervalTree(random_items)
        rng = random.Random(7)
        for _ in range(200):
            qs = rng.uniform(-5, 105)
            qe = qs + rng.uniform(0, 20)
            query = Interval(qs, qe)
            got = sorted(p for _, p in tree.overlapping(query))
            assert got == brute_overlapping(random_items, query)

    def test_stabbing_matches_brute_force(self, random_items):
        tree = IntervalTree(random_items)
        rng = random.Random(8)
        for _ in range(200):
            t = rng.uniform(-5, 105)
            got = sorted(p for _, p in tree.stabbing(t))
            assert got == brute_stabbing(random_items, t)

    def test_stabbing_endpoints(self, random_items):
        tree = IntervalTree(random_items)
        # Endpoints are inclusive: stab exactly at starts and ends.
        for iv, payload in random_items[:50]:
            assert payload in {p for _, p in tree.stabbing(iv.start)}
            assert payload in {p for _, p in tree.stabbing(iv.end)}

    def test_point_intervals(self):
        items = [(Interval(i, i), i) for i in range(10)]
        tree = IntervalTree(items)
        assert [p for _, p in tree.stabbing(4)] == [4]
        got = sorted(p for _, p in tree.overlapping(Interval(2.5, 6)))
        assert got == [3, 4, 5, 6]
