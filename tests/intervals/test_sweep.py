"""Unit tests for the plane-sweep join primitives."""

import random

import pytest

from repro.intervals.allen import ALLEN_PREDICATES
from repro.intervals.interval import Interval
from repro.intervals.sweep import before_pairs, intersecting_pairs, join_pairs


def random_side(seed, n, span=60, max_len=10, integer=True):
    rng = random.Random(seed)
    out = []
    for index in range(n):
        start = rng.randint(0, span) if integer else rng.uniform(0, span)
        length = rng.randint(0, max_len) if integer else rng.uniform(0, max_len)
        out.append((Interval(start, start + length), index))
    return out


class TestIntersectingPairs:
    def test_small_example(self):
        left = [(Interval(0, 5), "a"), (Interval(10, 12), "b")]
        right = [(Interval(4, 11), "x")]
        got = sorted(
            (l[1], r[1]) for l, r in intersecting_pairs(left, right)
        )
        assert got == [("a", "x"), ("b", "x")]

    def test_matches_brute_force(self):
        left = random_side(1, 120)
        right = random_side(2, 150)
        got = sorted((l[1], r[1]) for l, r in intersecting_pairs(left, right))
        want = sorted(
            (li, ri)
            for liv, li in left
            for riv, ri in right
            if liv.intersects(riv)
        )
        assert got == want

    def test_each_pair_exactly_once(self):
        left = random_side(3, 80)
        right = random_side(4, 80)
        got = [(l[1], r[1]) for l, r in intersecting_pairs(left, right)]
        assert len(got) == len(set(got))

    def test_empty_sides(self):
        assert list(intersecting_pairs([], random_side(5, 10))) == []
        assert list(intersecting_pairs(random_side(5, 10), [])) == []

    def test_shared_endpoint_counts(self):
        left = [(Interval(0, 5), 0)]
        right = [(Interval(5, 9), 0)]
        assert len(list(intersecting_pairs(left, right))) == 1


class TestBeforePairs:
    def test_matches_brute_force(self):
        left = random_side(6, 100)
        right = random_side(7, 100)
        got = sorted((l[1], r[1]) for l, r in before_pairs(left, right))
        want = sorted(
            (li, ri)
            for liv, li in left
            for riv, ri in right
            if liv.end < riv.start
        )
        assert got == want

    def test_touching_is_not_before(self):
        left = [(Interval(0, 5), 0)]
        right = [(Interval(5, 9), 0)]
        assert list(before_pairs(left, right)) == []


class TestJoinPairs:
    @pytest.mark.parametrize("name", sorted(ALLEN_PREDICATES))
    def test_every_predicate_matches_brute_force(self, name):
        predicate = ALLEN_PREDICATES[name]
        left = random_side(8, 90)
        right = random_side(9, 90)
        got = sorted((l[1], r[1]) for l, r in join_pairs(left, right, name))
        want = sorted(
            (li, ri)
            for liv, li in left
            for riv, ri in right
            if predicate.holds(liv, riv)
        )
        assert got == want
