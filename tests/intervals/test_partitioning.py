"""Unit tests for partitionings and the Section-3 primitives.

Includes the paper's Figure 2 worked example.
"""

import pytest

from repro.errors import InvalidPartitioningError
from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning


class TestConstruction:
    def test_uniform(self):
        parts = Partitioning.uniform(0, 100, 4)
        assert len(parts) == 4
        assert parts.boundaries == (0, 25, 50, 75, 100)

    def test_uniform_single_partition(self):
        parts = Partitioning.uniform(0, 10, 1)
        assert len(parts) == 1

    def test_uniform_invalid(self):
        with pytest.raises(InvalidPartitioningError):
            Partitioning.uniform(0, 100, 0)
        with pytest.raises(InvalidPartitioningError):
            Partitioning.uniform(5, 5, 3)

    def test_explicit_boundaries_must_increase(self):
        with pytest.raises(InvalidPartitioningError):
            Partitioning((0, 10, 10, 20))
        with pytest.raises(InvalidPartitioningError):
            Partitioning((0,))

    def test_equi_depth_balances_skew(self):
        # 90% of starts in [0, 10), 10% in [10, 100).
        starts = [i * 0.01 for i in range(900)] + [10 + i for i in range(100)]
        parts = Partitioning.equi_depth(starts, 4)
        counts = [0] * len(parts)
        for s in starts:
            counts[parts.locate(s)] += 1
        assert max(counts) <= 2 * (len(starts) / len(parts))

    def test_equi_depth_collapses_ties(self):
        parts = Partitioning.equi_depth([5.0] * 100, 4)
        assert len(parts) >= 1
        assert parts.locate(5.0) == 0

    def test_equi_depth_empty_raises(self):
        with pytest.raises(InvalidPartitioningError):
            Partitioning.equi_depth([], 4)


class TestLocate:
    def test_interior_points(self):
        parts = Partitioning.uniform(0, 100, 4)
        assert parts.locate(0) == 0
        assert parts.locate(24.999) == 0
        assert parts.locate(25) == 1
        assert parts.locate(99.999) == 3

    def test_clamping(self):
        parts = Partitioning.uniform(0, 100, 4)
        assert parts.locate(-5) == 0
        assert parts.locate(100) == 3
        assert parts.locate(1000) == 3


class TestFigure2Example:
    """The paper's Figure 2: partitioning of four partition-intervals;
    u starts in p1, spans into p2; v starts and ends within p2."""

    @pytest.fixture
    def parts(self):
        return Partitioning.uniform(0, 40, 4)  # p1=[0,10) ... p4=[30,40)

    @pytest.fixture
    def u(self):
        return Interval(6, 14)  # starts in p1, crosses into p2

    @pytest.fixture
    def v(self):
        return Interval(12, 18)  # inside p2

    def test_project(self, parts, u, v):
        assert parts.project(u) == 0
        assert parts.project(v) == 1

    def test_split(self, parts, u, v):
        assert list(parts.split(u)) == [0, 1]
        assert list(parts.split(v)) == [1]

    def test_replicate(self, parts, u, v):
        assert list(parts.replicate(u)) == [0, 1, 2, 3]
        assert list(parts.replicate(v)) == [1, 2, 3]


class TestPrimitiveAlgebra:
    def test_project_is_first_of_split(self):
        parts = Partitioning.uniform(0, 100, 10)
        for iv in (Interval(3, 55), Interval(10, 10), Interval(95, 99)):
            assert parts.project(iv) == list(parts.split(iv))[0]

    def test_split_subset_of_replicate(self):
        parts = Partitioning.uniform(0, 100, 10)
        for iv in (Interval(3, 55), Interval(42, 42), Interval(0, 99.9)):
            assert set(parts.split(iv)) <= set(parts.replicate(iv))

    def test_replicate_reaches_end(self):
        parts = Partitioning.uniform(0, 100, 10)
        assert list(parts.replicate(Interval(97, 99)))[-1] == 9

    def test_boundary_touching_split(self):
        parts = Partitioning.uniform(0, 100, 4)
        # Ends exactly on a boundary point: that point belongs to the next
        # partition, so split includes it.
        assert list(parts.split(Interval(10, 25))) == [0, 1]
        assert list(parts.split(Interval(10, 24.999))) == [0]


class TestCrossing:
    def test_crosses_right(self):
        parts = Partitioning.uniform(0, 40, 4)
        assert parts.crosses_right(Interval(6, 14), 0)
        assert not parts.crosses_right(Interval(6, 9), 0)
        # Ending exactly on the boundary point counts as crossing (the
        # point belongs to the next partition).
        assert parts.crosses_right(Interval(6, 10), 0)

    def test_crosses_left(self):
        parts = Partitioning.uniform(0, 40, 4)
        assert parts.crosses_left(Interval(6, 14), 1)
        assert not parts.crosses_left(Interval(10, 14), 1)

    def test_last_partition_has_no_right_crossing(self):
        parts = Partitioning.uniform(0, 40, 4)
        assert not parts.crosses_right(Interval(35, 39), 3)
        assert not parts.crosses_right(Interval(35, 1000), 3)

    def test_partition_interval(self):
        parts = Partitioning.uniform(0, 40, 4)
        assert parts.partition_interval(1) == Interval(10, 20)
        with pytest.raises(IndexError):
            parts.partition_interval(4)
