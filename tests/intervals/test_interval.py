"""Unit tests for the Interval value type."""

import math

import pytest

from repro.errors import InvalidIntervalError
from repro.intervals.interval import Interval, point, span


class TestConstruction:
    def test_valid_interval(self):
        iv = Interval(1.0, 3.5)
        assert iv.start == 1.0
        assert iv.end == 3.5

    def test_point_interval_allowed(self):
        iv = Interval(2, 2)
        assert iv.is_point
        assert iv.length == 0

    def test_reversed_endpoints_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5, 4)

    def test_nan_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(math.nan, 1)
        with pytest.raises(InvalidIntervalError):
            Interval(0, math.nan)

    def test_immutable(self):
        iv = Interval(0, 1)
        with pytest.raises(AttributeError):
            iv.start = 5  # type: ignore[misc]

    def test_point_helper(self):
        assert point(7.5) == Interval(7.5, 7.5)


class TestGeometry:
    def test_length(self):
        assert Interval(2, 9).length == 7

    def test_contains_point_boundaries_inclusive(self):
        iv = Interval(1, 4)
        assert iv.contains_point(1)
        assert iv.contains_point(4)
        assert iv.contains_point(2.5)
        assert not iv.contains_point(0.999)
        assert not iv.contains_point(4.001)

    def test_intersects_shared_endpoint(self):
        assert Interval(0, 2).intersects(Interval(2, 5))
        assert Interval(2, 5).intersects(Interval(0, 2))

    def test_intersects_disjoint(self):
        assert not Interval(0, 1).intersects(Interval(2, 3))

    def test_intersects_containment(self):
        assert Interval(0, 10).intersects(Interval(3, 4))
        assert Interval(3, 4).intersects(Interval(0, 10))

    def test_intersection_value(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 5).intersection(Interval(5, 9)) == Interval(5, 5)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_union_span(self):
        assert Interval(0, 2).union_span(Interval(5, 7)) == Interval(0, 7)

    def test_shift(self):
        assert Interval(1, 4).shift(2.5) == Interval(3.5, 6.5)

    def test_scale(self):
        assert Interval(2, 4).scale(2.0) == Interval(4, 8)
        assert Interval(2, 4).scale(0.5, origin=2) == Interval(2, 3)

    def test_scale_negative_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(0, 1).scale(-1)


class TestOrdering:
    def test_less_than_order_is_start_based(self):
        assert Interval(1, 100).less_than(Interval(2, 3))
        assert not Interval(2, 3).less_than(Interval(1, 100))

    def test_less_than_is_reflexive_on_equal_starts(self):
        a, b = Interval(1, 5), Interval(1, 9)
        assert a.less_than(b)
        assert b.less_than(a)

    def test_dataclass_ordering(self):
        assert Interval(1, 2) < Interval(1, 3) < Interval(2, 2)

    def test_hashable(self):
        assert len({Interval(0, 1), Interval(0, 1), Interval(0, 2)}) == 2


class TestSpan:
    def test_span_of_many(self):
        assert span([Interval(3, 4), Interval(0, 1), Interval(2, 9)]) == Interval(0, 9)

    def test_span_single(self):
        assert span([Interval(5, 6)]) == Interval(5, 6)

    def test_span_empty_raises(self):
        with pytest.raises(InvalidIntervalError):
            span([])

    def test_as_tuple_and_iter(self):
        assert Interval(1, 2).as_tuple() == (1, 2)
        assert tuple(Interval(1, 2)) == (1, 2)
