"""Unit tests for consistent and crossing interval-sets (Section 5).

Reconstructs a concrete instance of the paper's Figure 3 scenario: the
query Q0 = R1 overlaps R2 and R2 contains R3 and R3 overlaps R4 over a
three-partition time range.
"""

import pytest

from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning
from repro.intervals.sets import crosses, is_consistent, normalize_conditions


@pytest.fixture
def q0_conditions():
    return normalize_conditions(
        [
            ("R1", "overlaps", "R2"),
            ("R2", "contains", "R3"),
            ("R3", "overlaps", "R4"),
        ]
    )


@pytest.fixture
def parts():
    # p1 = [0, 10), p2 = [10, 20), p3 = [20, 30)
    return Partitioning.uniform(0, 30, 3)


class TestConsistency:
    def test_satisfying_triple_is_consistent(self, q0_conditions):
        interval_set = {
            "R1": Interval(8, 14),   # overlaps R2
            "R2": Interval(9, 22),   # contains R3
            "R3": Interval(11, 21),  # inside R2
        }
        assert is_consistent(interval_set, q0_conditions)

    def test_violating_pair_is_inconsistent(self, q0_conditions):
        interval_set = {
            "R1": Interval(0, 2),    # does NOT overlap R2
            "R2": Interval(9, 22),
        }
        assert not is_consistent(interval_set, q0_conditions)

    def test_subset_of_consistent_set_is_consistent(self, q0_conditions):
        full = {
            "R1": Interval(8, 14),
            "R2": Interval(9, 22),
            "R3": Interval(11, 21),
            "R4": Interval(15, 25),
        }
        assert is_consistent(full, q0_conditions)
        for drop in full:
            subset = {k: v for k, v in full.items() if k != drop}
            assert is_consistent(subset, q0_conditions), f"dropping {drop}"

    def test_conditions_between_absent_relations_ignored(self, q0_conditions):
        # Only R1 and R4 present: no condition joins them directly.
        interval_set = {"R1": Interval(0, 1), "R4": Interval(100, 200)}
        assert is_consistent(interval_set, q0_conditions)

    def test_singletons_always_consistent(self, q0_conditions):
        assert is_consistent({"R2": Interval(0, 100)}, q0_conditions)


class TestCrossing:
    def test_crossing_set_example(self, q0_conditions, parts):
        # {u3, v1, w2} analogue: all intersect p2 (index 1); the only
        # boundary condition is R3 overlaps R4 (R4 absent), which demands
        # the R3 interval cross p2's right boundary.
        interval_set = {
            "R1": Interval(11, 14),
            "R2": Interval(9, 22),
            "R3": Interval(12, 23),  # crosses right boundary of p2
        }
        assert crosses(interval_set, q0_conditions, parts, 1)

    def test_right_boundary_violation(self, q0_conditions, parts):
        # R3's interval ends inside p2 -> cannot combine with a later R4.
        interval_set = {
            "R1": Interval(11, 14),
            "R2": Interval(9, 22),
            "R3": Interval(12, 18),
        }
        assert not crosses(interval_set, q0_conditions, parts, 1)

    def test_two_sided_crossing(self, q0_conditions, parts):
        # {v3, w2} analogue: R1 absent forces R2 to cross p2's left
        # boundary; R4 absent forces R3 to cross its right boundary.
        interval_set = {
            "R2": Interval(8, 22),   # starts before p2
            "R3": Interval(12, 21),  # ends after p2
        }
        assert crosses(interval_set, q0_conditions, parts, 1)

    def test_left_boundary_violation(self, q0_conditions, parts):
        interval_set = {
            "R2": Interval(11, 22),  # starts inside p2: R1 cannot precede
            "R3": Interval(12, 21),
        }
        assert not crosses(interval_set, q0_conditions, parts, 1)

    def test_member_must_intersect_partition(self, q0_conditions, parts):
        interval_set = {
            "R1": Interval(0, 5),    # entirely inside p1
            "R2": Interval(9, 22),
            "R3": Interval(12, 23),
        }
        assert not crosses(interval_set, q0_conditions, parts, 1)

    def test_full_tuple_is_not_crossing(self, q0_conditions, parts):
        # A complete output tuple has no absent partner, hence no
        # crossing obligations — but all members must still intersect the
        # partition, which they do here; with no boundary conditions the
        # set trivially "crosses".  The RCCIS conditions C1+C2 are applied
        # to *proper* subsets by construction of absent partners; here we
        # simply document that a co-partitioned full tuple crosses
        # vacuously.
        interval_set = {
            "R1": Interval(11, 14),
            "R2": Interval(9, 22),
            "R3": Interval(12, 19),
            "R4": Interval(13, 23),
        }
        assert crosses(interval_set, q0_conditions, parts, 1)

    def test_sequence_condition_crossing_direction(self, parts):
        conditions = normalize_conditions([("A", "before", "B")])
        # A present, B absent: A must cross the right boundary.
        assert crosses({"A": Interval(12, 25)}, conditions, parts, 1)
        assert not crosses({"A": Interval(12, 18)}, conditions, parts, 1)
        # B present, A absent: B must cross the left boundary.
        assert crosses({"B": Interval(8, 18)}, conditions, parts, 1)
        assert not crosses({"B": Interval(12, 18)}, conditions, parts, 1)
