"""Unit tests for Allen's interval algebra predicates."""

import pytest

from repro.errors import UnknownPredicateError
from repro.intervals.allen import (
    ALLEN_PREDICATES,
    AFTER,
    BEFORE,
    CONTAINS,
    EQUALS,
    MEETS,
    OVERLAPS,
    STARTS,
    MapOperator,
    classify_predicates,
    get_predicate,
    relation_between,
    relations_holding,
)
from repro.intervals.interval import Interval


# Canonical witness pairs: (predicate, left, right)
WITNESSES = [
    ("before", Interval(0, 2), Interval(3, 5)),
    ("after", Interval(3, 5), Interval(0, 2)),
    ("meets", Interval(0, 2), Interval(2, 5)),
    ("met_by", Interval(2, 5), Interval(0, 2)),
    ("overlaps", Interval(0, 3), Interval(2, 5)),
    ("overlapped_by", Interval(2, 5), Interval(0, 3)),
    ("starts", Interval(1, 3), Interval(1, 5)),
    ("started_by", Interval(1, 5), Interval(1, 3)),
    ("during", Interval(2, 3), Interval(1, 5)),
    ("contains", Interval(1, 5), Interval(2, 3)),
    ("finishes", Interval(3, 5), Interval(1, 5)),
    ("finished_by", Interval(1, 5), Interval(3, 5)),
    ("equals", Interval(1, 5), Interval(1, 5)),
]


class TestTruthTables:
    @pytest.mark.parametrize("name,left,right", WITNESSES)
    def test_witness_satisfies_exactly_its_predicate(self, name, left, right):
        for other_name, predicate in ALLEN_PREDICATES.items():
            expected = other_name == name
            assert predicate.holds(left, right) is expected, (
                f"{other_name}({left}, {right}) should be {expected}"
            )

    @pytest.mark.parametrize("name,left,right", WITNESSES)
    def test_relation_between_identifies_witness(self, name, left, right):
        assert relation_between(left, right).name == name

    @pytest.mark.parametrize("name,left,right", WITNESSES)
    def test_inverse_symmetry(self, name, left, right):
        predicate = ALLEN_PREDICATES[name]
        assert predicate.inverse.holds(right, left)
        assert predicate.inverse.inverse is predicate

    def test_thirteen_relations(self):
        assert len(ALLEN_PREDICATES) == 13

    def test_touching_point_intervals_are_unambiguous(self):
        # A point at another interval's right endpoint finishes it (not
        # meets / met_by) under closed-interval semantics.
        assert relations_holding(Interval(3, 3), Interval(1, 3)) == [
            ALLEN_PREDICATES["finishes"]
        ]
        assert relations_holding(Interval(1, 3), Interval(3, 3)) == [
            ALLEN_PREDICATES["finished_by"]
        ]
        assert relations_holding(Interval(3, 3), Interval(3, 5)) == [
            ALLEN_PREDICATES["starts"]
        ]
        assert relations_holding(Interval(3, 3), Interval(3, 3)) == [
            ALLEN_PREDICATES["equals"]
        ]


class TestClassification:
    def test_sequence_predicates(self):
        assert BEFORE.is_sequence
        assert AFTER.is_sequence
        assert not BEFORE.is_colocation

    def test_colocation_predicates(self):
        for name, predicate in ALLEN_PREDICATES.items():
            if name not in ("before", "after"):
                assert predicate.is_colocation, name

    def test_colocation_implies_intersection(self):
        for name, left, right in WITNESSES:
            predicate = ALLEN_PREDICATES[name]
            if predicate.is_colocation:
                assert left.intersects(right), name
            else:
                assert not left.intersects(right), name

    def test_classify_predicates(self):
        assert classify_predicates(["overlaps", "contains"]) == (True, False)
        assert classify_predicates(["before"]) == (False, True)
        assert classify_predicates(["before", "meets"]) == (True, True)


class TestEnforcedOrders:
    @pytest.mark.parametrize("name,left,right", WITNESSES)
    def test_orders_hold_on_witnesses(self, name, left, right):
        predicate = ALLEN_PREDICATES[name]
        if predicate.enforces_left_first():
            assert left.start <= right.start
        if predicate.enforces_right_first():
            assert right.start <= left.start

    def test_every_predicate_enforces_some_order(self):
        for predicate in ALLEN_PREDICATES.values():
            assert predicate.orders

    def test_equal_start_predicates_enforce_both(self):
        for name in ("starts", "started_by", "equals"):
            predicate = ALLEN_PREDICATES[name]
            assert predicate.enforces_left_first()
            assert predicate.enforces_right_first()


class TestOperatorTable:
    def test_sequence_uses_replicate_on_earlier_side(self):
        assert BEFORE.left_operator is MapOperator.REPLICATE
        assert BEFORE.right_operator is MapOperator.PROJECT
        assert AFTER.left_operator is MapOperator.PROJECT
        assert AFTER.right_operator is MapOperator.REPLICATE

    def test_colocation_splits_earlier_side(self):
        assert OVERLAPS.left_operator is MapOperator.SPLIT
        assert OVERLAPS.right_operator is MapOperator.PROJECT
        assert CONTAINS.left_operator is MapOperator.SPLIT

    def test_equal_start_predicates_project_both(self):
        for name in ("starts", "started_by", "equals"):
            predicate = ALLEN_PREDICATES[name]
            assert predicate.left_operator is MapOperator.PROJECT
            assert predicate.right_operator is MapOperator.PROJECT

    def test_exactly_one_side_projects(self):
        # Each 2-way join pins its output tuple through a projected side.
        for predicate in ALLEN_PREDICATES.values():
            assert MapOperator.PROJECT in (
                predicate.left_operator,
                predicate.right_operator,
            )


class TestLookup:
    def test_canonical_names(self):
        assert get_predicate("overlaps") is OVERLAPS
        assert get_predicate("Overlaps") is OVERLAPS

    def test_symbols_and_aliases(self):
        assert get_predicate("<") is BEFORE
        assert get_predicate("o") is OVERLAPS
        assert get_predicate("=") is EQUALS
        assert get_predicate("contained_by").name == "during"

    def test_instance_passthrough(self):
        assert get_predicate(MEETS) is MEETS

    def test_unknown_raises(self):
        with pytest.raises(UnknownPredicateError):
            get_predicate("sideways")

    def test_starts_is_symmetricly_projected(self):
        assert STARTS.left_operator is MapOperator.PROJECT
