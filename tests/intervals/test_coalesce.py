"""Unit tests for temporal-set operations."""

import pytest

from repro.errors import InvalidIntervalError
from repro.intervals.coalesce import (
    clip,
    coalesce,
    gaps,
    intersect_sets,
    subtract,
    total_coverage,
)
from repro.intervals.interval import Interval


class TestCoalesce:
    def test_merges_overlapping(self):
        assert coalesce([Interval(0, 5), Interval(3, 8)]) == [Interval(0, 8)]

    def test_merges_touching(self):
        assert coalesce([Interval(0, 2), Interval(2, 5)]) == [Interval(0, 5)]

    def test_keeps_disjoint(self):
        assert coalesce([Interval(0, 1), Interval(3, 4)]) == [
            Interval(0, 1),
            Interval(3, 4),
        ]

    def test_min_gap_bridges(self):
        assert coalesce(
            [Interval(0, 1), Interval(1.4, 2)], min_gap=0.5
        ) == [Interval(0, 2)]
        assert coalesce(
            [Interval(0, 1), Interval(1.6, 2)], min_gap=0.5
        ) == [Interval(0, 1), Interval(1.6, 2)]

    def test_contained_interval_absorbed(self):
        assert coalesce([Interval(0, 10), Interval(2, 3)]) == [Interval(0, 10)]

    def test_unsorted_input(self):
        assert coalesce([Interval(5, 6), Interval(0, 1), Interval(0.5, 5.5)]) == [
            Interval(0, 6)
        ]

    def test_empty(self):
        assert coalesce([]) == []

    def test_negative_gap_rejected(self):
        with pytest.raises(InvalidIntervalError):
            coalesce([Interval(0, 1)], min_gap=-1)


class TestGapsAndCoverage:
    def test_gaps(self):
        assert gaps([Interval(0, 2), Interval(5, 6), Interval(8, 9)]) == [
            Interval(2, 5),
            Interval(6, 8),
        ]

    def test_gaps_of_contiguous_is_empty(self):
        assert gaps([Interval(0, 5), Interval(5, 9)]) == []

    def test_total_coverage(self):
        assert total_coverage([Interval(0, 2), Interval(1, 4), Interval(10, 11)]) == 5

    def test_coverage_of_points_is_zero(self):
        assert total_coverage([Interval(3, 3), Interval(7, 7)]) == 0


class TestClipSubtractIntersect:
    def test_clip(self):
        assert clip(
            [Interval(0, 10), Interval(20, 30)], Interval(5, 25)
        ) == [Interval(5, 10), Interval(20, 25)]

    def test_clip_drops_disjoint(self):
        assert clip([Interval(0, 1)], Interval(5, 6)) == []

    def test_subtract_middle_hole(self):
        assert subtract([Interval(0, 10)], [Interval(3, 5)]) == [
            Interval(0, 3),
            Interval(5, 10),
        ]

    def test_subtract_edge_holes(self):
        assert subtract([Interval(0, 10)], [Interval(0, 2), Interval(8, 10)]) == [
            Interval(2, 8)
        ]

    def test_subtract_everything(self):
        assert subtract([Interval(2, 4)], [Interval(0, 10)]) == []

    def test_subtract_nothing(self):
        assert subtract([Interval(0, 3)], [Interval(5, 6)]) == [Interval(0, 3)]

    def test_intersect_sets(self):
        left = [Interval(0, 10), Interval(20, 30)]
        right = [Interval(5, 25)]
        assert intersect_sets(left, right) == [
            Interval(5, 10),
            Interval(20, 25),
        ]

    def test_intersect_disjoint(self):
        assert intersect_sets([Interval(0, 1)], [Interval(2, 3)]) == []

    def test_coverage_identity(self):
        # |A| = |A\B| + |A ∩ B| for coalesced sets.
        a = [Interval(0, 10), Interval(15, 20)]
        b = [Interval(5, 17)]
        assert total_coverage(a) == pytest.approx(
            total_coverage(subtract(a, b))
            + total_coverage(intersect_sets(a, b))
        )
