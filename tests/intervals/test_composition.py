"""Unit tests for the Allen composition table and path consistency."""

import pytest

from repro.errors import UnsatisfiableQueryError
from repro.intervals.composition import (
    FULL_SET,
    ConstraintNetwork,
    compose,
    compose_sets,
    composition_table,
    invert_set,
    path_consistency,
)


class TestCompositionTable:
    def test_table_is_complete(self):
        table = composition_table()
        assert len(table) == 13 * 13

    def test_before_before(self):
        assert compose("before", "before") == frozenset({"before"})

    def test_before_after_is_full(self):
        assert compose("before", "after") == FULL_SET

    def test_equals_is_identity(self):
        for name in FULL_SET:
            assert compose("equals", name) == frozenset({name})
            assert compose(name, "equals") == frozenset({name})

    def test_during_during(self):
        assert compose("during", "during") == frozenset({"during"})

    def test_meets_meets(self):
        assert compose("meets", "meets") == frozenset({"before"})

    def test_before_during(self):
        # Classic cell: b ∘ d = {b, o, m, d, s}.
        assert compose("before", "during") == frozenset(
            {"before", "overlaps", "meets", "during", "starts"}
        )

    def test_overlaps_overlaps(self):
        assert compose("overlaps", "overlaps") == frozenset(
            {"before", "meets", "overlaps"}
        )

    def test_inverse_closure(self):
        # (r1 ∘ r2)^-1 == r2^-1 ∘ r1^-1
        for r1 in ("overlaps", "during", "meets"):
            for r2 in ("before", "starts", "contains"):
                lhs = invert_set(compose(r1, r2))
                from repro.intervals.allen import ALLEN_PREDICATES
                rhs = compose(
                    ALLEN_PREDICATES[r2].inverse_name,
                    ALLEN_PREDICATES[r1].inverse_name,
                )
                assert lhs == rhs, (r1, r2)

    def test_compose_sets_unions(self):
        result = compose_sets(
            frozenset({"before", "meets"}), frozenset({"before"})
        )
        assert result == frozenset({"before"})


class TestConstraintNetwork:
    def test_constraints_sync_converse(self):
        net = ConstraintNetwork(["A", "B"])
        net.constrain("A", "B", ["before"])
        assert net.constraint("B", "A") == frozenset({"after"})

    def test_self_constraint_is_equals(self):
        net = ConstraintNetwork(["A"])
        assert net.constraint("A", "A") == frozenset({"equals"})

    def test_conflicting_constraints_raise(self):
        net = ConstraintNetwork(["A", "B"])
        net.constrain("A", "B", ["before"])
        with pytest.raises(UnsatisfiableQueryError):
            net.constrain("A", "B", ["after"])

    def test_duplicate_variables_deduped(self):
        net = ConstraintNetwork(["A", "B", "A"])
        assert net.variables == ["A", "B"]


class TestPathConsistency:
    def test_transitive_tightening(self):
        net = ConstraintNetwork(["A", "B", "C"])
        net.constrain("A", "B", ["before"])
        net.constrain("B", "C", ["before"])
        tightened = path_consistency(net)
        assert tightened.constraint("A", "C") == frozenset({"before"})

    def test_cycle_detected_empty(self):
        net = ConstraintNetwork(["A", "B", "C"])
        net.constrain("A", "B", ["before"])
        net.constrain("B", "C", ["before"])
        net.constrain("C", "A", ["before"])
        with pytest.raises(UnsatisfiableQueryError):
            path_consistency(net)

    def test_containment_chain(self):
        net = ConstraintNetwork(["A", "B", "C"])
        net.constrain("A", "B", ["contains"])
        net.constrain("B", "C", ["contains"])
        tightened = path_consistency(net)
        assert tightened.constraint("A", "C") == frozenset({"contains"})

    def test_satisfiable_network_survives(self):
        net = ConstraintNetwork(["A", "B", "C"])
        net.constrain("A", "B", ["overlaps"])
        net.constrain("B", "C", ["overlaps"])
        tightened = path_consistency(net)
        assert tightened.constraint("A", "C")  # non-empty

    def test_original_network_not_mutated(self):
        net = ConstraintNetwork(["A", "B", "C"])
        net.constrain("A", "B", ["before"])
        net.constrain("B", "C", ["before"])
        path_consistency(net)
        assert net.constraint("A", "C") == FULL_SET
