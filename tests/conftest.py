"""Shared test fixtures and helpers."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import pytest

from repro import Interval, IntervalJoinQuery, Relation, reference_join


def make_random_relation(
    name: str,
    n: int,
    *,
    span: float = 200.0,
    max_length: float = 30.0,
    rng: Optional[random.Random] = None,
    integer: bool = False,
) -> Relation:
    """A random single-attribute interval relation."""
    rng = rng or random.Random(0)
    intervals: List[Interval] = []
    for _ in range(n):
        if integer:
            start = rng.randint(0, int(span))
            end = start + rng.randint(0, int(max_length))
            intervals.append(Interval(start, end))
        else:
            start = round(rng.uniform(0, span), 3)
            end = round(start + rng.uniform(0, max_length), 3)
            intervals.append(Interval(start, end))
    return Relation.of_intervals(name, intervals)


def make_dataset(
    names: Sequence[str],
    n: int,
    seed: int = 0,
    *,
    span: float = 200.0,
    max_length: float = 30.0,
    integer: bool = False,
) -> Dict[str, Relation]:
    """One random relation per name, all from one seeded RNG."""
    rng = random.Random(seed)
    return {
        name: make_random_relation(
            name, n, span=span, max_length=max_length, rng=rng,
            integer=integer,
        )
        for name in names
    }


def assert_matches_reference(query: IntervalJoinQuery, data, result) -> None:
    """Assert a JoinResult equals the oracle, with a helpful diff."""
    reference = reference_join(query, data)
    got = result.tuple_ids()
    want = reference.tuple_ids()
    missing = set(map(tuple, want)) - set(map(tuple, got))
    extra = set(map(tuple, got)) - set(map(tuple, want))
    assert not missing and not extra, (
        f"{result.metrics.algorithm}: missing={sorted(missing)[:5]} "
        f"extra={sorted(extra)[:5]} (|got|={len(got)}, |want|={len(want)})"
    )
    # Exactly-once: no duplicate tuples either.
    assert len(got) == len(set(map(tuple, got))), "duplicate output tuples"


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)
