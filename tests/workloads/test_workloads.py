"""Unit tests for the workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.intervals.interval import Interval
from repro.workloads.distributions import DISTRIBUTIONS, make_sampler
from repro.workloads.packets import (
    TRACE_PROFILES,
    build_packet_trains,
    generate_trace,
    Packet,
    replicate_trains,
    trains_relation,
)
from repro.workloads.spatial import (
    RectangleConfig,
    generate_rectangles,
    rectangles_intersect,
)
from repro.workloads.synthetic import SyntheticConfig, generate_intervals
from repro.workloads.weather import WeatherConfig, generate_weather_episodes


class TestDistributions:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_samples_within_unit_range(self, name):
        import numpy as np

        sampler = make_sampler(name)
        values = sampler(np.random.default_rng(0), 1000)
        assert (values >= 0).all() and (values < 1).all()

    def test_unknown_distribution(self):
        with pytest.raises(WorkloadError):
            make_sampler("cauchy")

    def test_callable_passthrough(self):
        fn = lambda rng, size: rng.random(size)  # noqa: E731
        assert make_sampler(fn) is fn


class TestSynthetic:
    def test_respects_ranges(self):
        config = SyntheticConfig(
            n=500, t_range=(0, 1000), length_range=(1, 50), seed=1
        )
        intervals = generate_intervals(config)
        assert len(intervals) == 500
        for iv in intervals:
            assert 0 <= iv.start <= 1000
            assert iv.end <= 1000
            assert iv.length <= 50

    def test_deterministic_with_seed(self):
        config = SyntheticConfig(n=50, seed=7)
        assert generate_intervals(config) == generate_intervals(config)

    def test_invalid_configs(self):
        with pytest.raises(WorkloadError):
            SyntheticConfig(n=-1)
        with pytest.raises(WorkloadError):
            SyntheticConfig(n=1, t_range=(5, 5))
        with pytest.raises(WorkloadError):
            SyntheticConfig(n=1, length_range=(5, 1))

    def test_zero_intervals(self):
        assert generate_intervals(SyntheticConfig(n=0, seed=1)) == []


class TestPacketTrains:
    def test_train_construction_hand_computed(self):
        packets = [
            Packet(0.0, 1, 2),
            Packet(0.1, 1, 2),   # same train (gap 0.1 < 0.5)
            Packet(0.3, 1, 2),   # same train
            Packet(2.0, 1, 2),   # new train (gap 1.7)
            Packet(0.2, 3, 4),   # separate flow
        ]
        trains = build_packet_trains(packets, gap_threshold=0.5)
        assert sorted(trains) == [
            Interval(0.0, 0.3),
            Interval(0.2, 0.2),
            Interval(2.0, 2.0),
        ]

    def test_gap_threshold_boundary_inclusive(self):
        packets = [Packet(0.0, 1, 2), Packet(0.5, 1, 2)]
        assert len(build_packet_trains(packets, gap_threshold=0.5)) == 1
        assert len(build_packet_trains(packets, gap_threshold=0.49)) == 2

    def test_invalid_threshold(self):
        with pytest.raises(WorkloadError):
            build_packet_trains([], gap_threshold=0)

    def test_trace_profiles_have_expected_scale(self):
        profile = TRACE_PROFILES["P04"]
        packets = generate_trace(profile, seed=0)
        assert 0.5 * profile.n_packets <= len(packets) <= 1.5 * profile.n_packets
        trains = build_packet_trains(packets)
        assert 0 < len(trains) < len(packets)

    def test_trace_is_time_sorted(self):
        packets = generate_trace(TRACE_PROFILES["P04"], seed=1)
        times = [p.time for p in packets]
        assert times == sorted(times)

    def test_replicate_trains(self):
        trains = [Interval(0, 1), Interval(5, 9)]
        scaled = replicate_trains(trains, 7, seed=2)
        assert len(scaled) == 7
        # Jitter keeps copies near the originals.
        assert abs(scaled[2].start - trains[0].start) < 0.01

    def test_replicate_empty(self):
        assert replicate_trains([], 10) == []

    def test_trains_relation_end_to_end(self):
        rel = trains_relation("R", TRACE_PROFILES["P04"], target=500, seed=3)
        assert len(rel) == 500


class TestSpatial:
    def test_rectangles_have_two_interval_attributes(self):
        rel = generate_rectangles("cities", RectangleConfig(n=20, seed=1))
        assert set(rel.attributes) == {"x", "y"}
        assert len(rel) == 20

    def test_intersection_helper(self):
        rel = generate_rectangles("r", RectangleConfig(n=2, seed=2))
        a, b = rel.rows
        expected = a.interval("x").intersects(b.interval("x")) and a.interval(
            "y"
        ).intersects(b.interval("y"))
        assert rectangles_intersect(a, b) is expected


class TestWeather:
    def test_three_relations(self):
        episodes = generate_weather_episodes(WeatherConfig(seed=1))
        assert set(episodes) == {"wind", "temperature", "pollution"}
        assert all(len(rel) > 0 for rel in episodes.values())

    def test_nesting_produces_contains_matches(self):
        from repro.core.query import IntervalJoinQuery
        from repro.core.reference import reference_join

        episodes = generate_weather_episodes(
            WeatherConfig(n_regimes=30, nested_fraction=1.0, seed=2)
        )
        q = IntervalJoinQuery.parse(
            [("wind", "contains", "temperature"), ("wind", "contains", "pollution")]
        )
        result = reference_join(q, episodes)
        assert len(result) > 0

    def test_invalid_config(self):
        with pytest.raises(WorkloadError):
            WeatherConfig(nested_fraction=1.5)
