"""Unit tests for load-balance metrics and table rendering."""

import pytest

from repro.stats.metrics import (
    LoadBalance,
    gini,
    jain_fairness,
    load_balance,
    percentile,
)
from repro.stats.reporting import human_count, human_seconds, render_table


class TestGini:
    def test_perfect_balance_is_zero(self):
        assert gini([10, 10, 10, 10]) == pytest.approx(0.0)

    def test_single_hot_spot(self):
        # All load on one of n reducers: G = (n - 1) / n.
        assert gini([100, 0, 0, 0]) == pytest.approx(0.75)

    def test_known_value(self):
        assert gini([1, 2, 3, 4]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 11))
        assert percentile(values, 50) == 5
        assert percentile(values, 95) == 10
        assert percentile(values, 100) == 10
        assert percentile(values, 0) == 1

    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestJainFairness:
    def test_perfect_balance(self):
        assert jain_fairness([10, 10, 10, 10]) == pytest.approx(1.0)

    def test_single_hot_spot(self):
        assert jain_fairness([100, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty(self):
        assert jain_fairness([]) == 1.0

    def test_all_zero(self):
        assert jain_fairness([0, 0]) == 1.0


class TestLoadBalance:
    def test_summary(self):
        summary = load_balance({0: 10, 1: 20, 2: 30})
        assert summary.reducers == 3
        assert summary.total == 60
        assert summary.max_load == 30
        assert summary.mean_load == pytest.approx(20.0)
        assert summary.imbalance == pytest.approx(1.5)

    def test_empty(self):
        summary = load_balance({})
        assert summary.reducers == 0
        assert summary.imbalance == 1.0

    def test_percentiles_and_gini(self):
        summary = load_balance({i: load for i, load in enumerate(
            [10, 20, 30, 40]
        )})
        assert summary.p50 == 20
        assert summary.p95 == 40
        assert summary.gini == pytest.approx(0.25)


class TestHumanFormats:
    def test_human_count(self):
        assert human_count(987) == "987"
        assert human_count(45_300) == "45.3K"
        assert human_count(1_234_567) == "1.2M"

    def test_human_seconds(self):
        assert human_seconds(83) == "01:23"
        assert human_seconds(3 * 3600 + 62) == "3:01:02"


class TestRenderTable:
    def test_renders_aligned(self):
        out = render_table(
            "Table X",
            ["name", "value"],
            [["a", 1], ["bbbb", 22]],
            note="shape only",
        )
        lines = out.splitlines()
        assert lines[0] == "Table X"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[-1].strip().startswith("note:")
        # all data lines equally wide
        assert len(lines[3]) == len(lines[4])
