"""``columnar_shuffle`` must mirror ``shuffle`` structurally — same task
routing, same per-task key order, groups carrying the same gids — on both
the compact int16 radix path and the int64 comparison-sort fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar.batch import ColumnarPairs, MapBlock
from repro.columnar.codec import KEY_CODECS, CellKeyCodec
from repro.mapreduce.shuffle import (
    RoundRobinKeyPartitioner,
    columnar_shuffle,
    shuffle,
)

NUM_TASKS = 4


def _int_stream(n, seed, *, wide=False):
    """Matching (records pairs, columnar batch) streams with int keys.

    ``wide=True`` plants a code beyond the int16 window so
    ``compact_codes`` refuses and the int64 argsort fallback runs.
    """
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 9, size=n).astype(np.int64)
    if wide:
        codes[0] = 2**20
    row_idx = np.arange(n, dtype=np.int64)
    starts = rng.uniform(0.0, 100.0, size=n)
    ends = starts + 1.0
    batch = ColumnarPairs(KEY_CODECS["int"])
    batch.append_block(
        MapBlock.single_tag(codes, row_idx, "R1"), 0, starts, ends
    )
    pairs = list(zip(codes.tolist(), row_idx.tolist()))
    return pairs, batch


def _cell_stream(n, seed):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, 5, size=n)
    cols = rng.integers(0, 5, size=n)
    codes = np.asarray(
        [CellKeyCodec.encode_cell(c) for c in zip(rows, cols)],
        dtype=np.int64,
    )
    row_idx = np.arange(n, dtype=np.int64)
    starts = rng.uniform(0.0, 100.0, size=n)
    ends = starts + 1.0
    batch = ColumnarPairs(KEY_CODECS["cell"])
    batch.append_block(
        MapBlock.single_tag(codes, row_idx, "R1"), 0, starts, ends
    )
    pairs = [
        ((int(i), int(j)), int(r)) for i, j, r in zip(rows, cols, row_idx)
    ]
    return pairs, batch


def _assert_same_structure(pairs, batch):
    partitioner = RoundRobinKeyPartitioner()
    records_tasks = shuffle(pairs, NUM_TASKS, partitioner)
    columnar_tasks = columnar_shuffle(batch, NUM_TASKS, partitioner)
    assert len(columnar_tasks) == len(records_tasks) == NUM_TASKS
    for records_task, columnar_task in zip(records_tasks, columnar_tasks):
        assert [key for key, _ in columnar_task] == [
            key for key, _ in records_task
        ]
        for (_, records_values), (_, group) in zip(
            records_task, columnar_task
        ):
            assert group.gids.tolist() == list(records_values)


@pytest.mark.parametrize("seed", [0, 1])
def test_int_keys_compact_path(seed):
    pairs, batch = _int_stream(120, seed)
    assert batch.codec.compact_codes(batch.columns()[0]) is not None
    _assert_same_structure(pairs, batch)


def test_int_keys_wide_fallback_path(seed=2):
    pairs, batch = _int_stream(120, seed, wide=True)
    assert batch.codec.compact_codes(batch.columns()[0]) is None
    _assert_same_structure(pairs, batch)


def test_cell_keys(seed=3):
    pairs, batch = _cell_stream(150, seed)
    _assert_same_structure(pairs, batch)


def test_empty_batch():
    pairs, batch = _int_stream(0, seed=0)
    _assert_same_structure(pairs, batch)
