"""Struct-of-arrays batch primitives against their records-plane loops."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.columnar.batch import (
    ColumnarPairs,
    ColumnValues,
    MapBlock,
    PayloadStore,
    job_columnar_kind,
    operator_map_columns,
    ranged_targets,
)
from repro.columnar.codec import KEY_CODECS
from repro.intervals.allen import MapOperator
from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning


def random_intervals(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0.0, span, size=n)
    ends = starts + rng.uniform(0.5, span / 4, size=n)
    return starts, ends


class TestRangedTargets:
    def test_matches_per_record_loops(self):
        lo = np.asarray([0, 2, 1], dtype=np.int64)
        hi = np.asarray([2, 2, 3], dtype=np.int64)
        keys, row_idx = ranged_targets(lo, hi)
        expected = [
            (key, row)
            for row, (a, b) in enumerate(zip(lo, hi))
            for key in range(a, b + 1)
        ]
        assert list(zip(keys.tolist(), row_idx.tolist())) == expected

    def test_empty(self):
        keys, row_idx = ranged_targets(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert len(keys) == 0 and len(row_idx) == 0


class TestOperatorMapColumns:
    partitioning = Partitioning.uniform(0.0, 100.0, 7)

    def _records_plane(self, operator, starts, ends):
        emitted = []
        for row, (start, end) in enumerate(zip(starts, ends)):
            interval = Interval(float(start), float(end))
            if operator is MapOperator.PROJECT:
                targets = [self.partitioning.project(interval)]
            elif operator is MapOperator.SPLIT:
                targets = list(self.partitioning.split(interval))
            else:
                targets = list(self.partitioning.replicate(interval))
            emitted.extend((target, row) for target in targets)
        return emitted

    @pytest.mark.parametrize(
        "operator",
        [MapOperator.PROJECT, MapOperator.SPLIT, MapOperator.REPLICATE],
    )
    def test_matches_records_plane(self, operator):
        starts, ends = random_intervals(50, seed=3)
        keys, row_idx, counters = operator_map_columns(
            self.partitioning, operator, starts, ends
        )
        assert (
            list(zip(keys.tolist(), row_idx.tolist()))
            == self._records_plane(operator, starts, ends)
        )
        if operator is MapOperator.REPLICATE:
            assert counters[("join", "replicated_intervals")] == 50
            assert counters[("join", "replicated_pairs")] == len(keys)
        else:
            assert counters == {}

    def test_no_counters_on_empty_input(self):
        empty = np.empty(0, dtype=np.float64)
        _, _, counters = operator_map_columns(
            self.partitioning, MapOperator.REPLICATE, empty, empty
        )
        assert counters == {}

    def test_locate_array_matches_locate(self):
        points = np.asarray([-5.0, 0.0, 13.0, 50.0, 99.9, 100.0, 400.0])
        located = self.partitioning.locate_array(points)
        assert located.tolist() == [
            self.partitioning.locate(float(p)) for p in points
        ]


class TestColumnarPairs:
    def test_append_and_columns(self):
        batch = ColumnarPairs(KEY_CODECS["int"])
        starts = np.asarray([1.0, 2.0, 3.0])
        ends = starts + 1.0
        block = MapBlock.single_tag(
            np.asarray([4, 0, 4], dtype=np.int64),
            np.asarray([0, 1, 2], dtype=np.int64),
            "left",
        )
        batch.append_block(block, segment=3, starts=starts, ends=ends)
        key_codes, gids, out_starts, out_ends, tag_codes = batch.columns()
        assert key_codes.tolist() == [4, 0, 4]
        assert gids.tolist() == [(3 << 32) | r for r in (0, 1, 2)]
        assert out_starts.tolist() == [1.0, 2.0, 3.0]
        assert out_ends.tolist() == [2.0, 3.0, 4.0]
        assert tag_codes.tolist() == [0, 0, 0]
        assert batch.tags == ("left",)
        assert len(batch) == 3

    def test_row_idx_gathers_endpoints(self):
        batch = ColumnarPairs(KEY_CODECS["int"])
        starts = np.asarray([10.0, 20.0])
        ends = np.asarray([11.0, 21.0])
        # Record 1 fans out to two partitions; its endpoints repeat.
        block = MapBlock.single_tag(
            np.asarray([0, 1, 2], dtype=np.int64),
            np.asarray([0, 1, 1], dtype=np.int64),
            "r",
        )
        batch.append_block(block, segment=0, starts=starts, ends=ends)
        _, _, out_starts, out_ends, _ = batch.columns()
        assert out_starts.tolist() == [10.0, 20.0, 20.0]
        assert out_ends.tolist() == [11.0, 21.0, 21.0]

    def test_tag_interning_across_blocks(self):
        batch = ColumnarPairs(KEY_CODECS["int"])
        one = np.asarray([0], dtype=np.int64)
        point = np.asarray([1.0])
        batch.append_block(
            MapBlock.single_tag(one, np.asarray([0]), "left"), 0, point, point
        )
        batch.append_block(
            MapBlock.single_tag(one, np.asarray([0]), "right"), 1, point, point
        )
        batch.append_block(
            MapBlock.single_tag(one, np.asarray([0]), "left"), 2, point, point
        )
        assert batch.tags == ("left", "right")
        tag_codes = batch.columns()[4]
        assert tag_codes.tolist() == [0, 1, 0]

    def test_logical_loads(self):
        batch = ColumnarPairs(KEY_CODECS["int"])
        codes = np.asarray([2, 2, 5], dtype=np.int64)
        points = np.asarray([1.0, 2.0, 3.0])
        batch.append_block(
            MapBlock.single_tag(codes, np.arange(3), "r"), 0, points, points
        )
        assert batch.logical_loads() == {2: 2, 5: 1}


class TestColumnValues:
    def _group(self, store=None):
        return ColumnValues(
            key=1,
            gids=np.asarray([0, 1, 2], dtype=np.int64),
            starts=np.asarray([1.0, 5.0, 3.0]),
            ends=np.asarray([2.0, 6.0, 4.0]),
            tag_codes=np.asarray([0, 1, 0], dtype=np.int16),
            tags=("left", "right"),
            store=store,
        )

    def test_tag_mask_and_items(self):
        group = self._group()
        mask = group.tag_mask("left")
        assert mask.tolist() == [True, False, True]
        assert group.tag_mask("missing").tolist() == [False] * 3
        items = group.items(mask)
        assert [(item[0].start, item[0].end, item[1]) for item in items] == [
            (1.0, 2.0, 0), (3.0, 4.0, 2),
        ]

    def test_iteration_resolves_through_store(self):
        store = PayloadStore()
        records = ["a", "b", "c"]
        mapper = SimpleNamespace(value_of=lambda record: ("tag", record))
        store.add_segment(0, records, mapper)
        group = self._group(store)
        assert list(group) == [("tag", "a"), ("tag", "b"), ("tag", "c")]
        assert store.record(1) == "b"

    def test_pickle_safety_net_materialises(self):
        import pickle

        store = PayloadStore()
        store.add_segment(
            0, ["x", "y", "z"], SimpleNamespace(value_of=lambda r: r)
        )
        restored = pickle.loads(pickle.dumps(self._group(store)))
        assert restored == ["x", "y", "z"]


class TestJobColumnarKind:
    def _mapper(self, kind="int", ready=True):
        return SimpleNamespace(
            columnar_key_kind=kind,
            columnar_ready=lambda: ready,
            map_columns=lambda *a: None,
        )

    def _reducer(self, ready=True):
        return SimpleNamespace(
            columnar_ready=lambda: ready,
            columnar_outputs=lambda *a: iter(()),
        )

    def _conf(self, mappers, reducer):
        return SimpleNamespace(
            inputs=[SimpleNamespace(mapper=m) for m in mappers],
            reducer=reducer,
        )

    def test_all_ready_same_kind(self):
        conf = self._conf(
            [self._mapper(), self._mapper()], self._reducer()
        )
        assert job_columnar_kind(conf) == "int"

    def test_mixed_kinds_fall_back(self):
        conf = self._conf(
            [self._mapper("int"), self._mapper("cell")], self._reducer()
        )
        assert job_columnar_kind(conf) is None

    def test_unready_mapper_falls_back(self):
        conf = self._conf(
            [self._mapper(), self._mapper(ready=False)], self._reducer()
        )
        assert job_columnar_kind(conf) is None

    def test_unready_reducer_falls_back(self):
        conf = self._conf([self._mapper()], self._reducer(ready=False))
        assert job_columnar_kind(conf) is None

    def test_protocol_free_classes_fall_back(self):
        conf = self._conf([SimpleNamespace()], self._reducer())
        assert job_columnar_kind(conf) is None
