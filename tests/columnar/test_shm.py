"""Shared-memory reduce-task transport: pack/unpack round-trips and
segment ownership."""

from __future__ import annotations

import numpy as np

from repro.columnar.batch import ColumnValues
from repro.columnar.shm import pack_reduce_task, unpack_reduce_task


def _group(key, gids, starts, ends, tag_codes, tags):
    return ColumnValues(
        key=key,
        gids=np.asarray(gids, dtype=np.int64),
        starts=np.asarray(starts, dtype=np.float64),
        ends=np.asarray(ends, dtype=np.float64),
        tag_codes=np.asarray(tag_codes, dtype=np.int16),
        tags=tags,
        store=None,
    )


def _sample_groups():
    tags = ("left", "right")
    return [
        (7, _group(7, [3, 1], [1.5, 2.5], [2.0, 3.0], [0, 1], tags)),
        ((0, 1), _group((0, 1), [9], [4.0], [5.0], [0], tags)),
    ]


class TestRoundtrip:
    def test_groups_survive_pack_unpack(self):
        groups = _sample_groups()
        task, shm = pack_reduce_task(groups)
        assert shm is not None
        try:
            restored, attached = unpack_reduce_task(task)
            assert attached is not None
            try:
                assert [key for key, _ in restored] == [
                    key for key, _ in groups
                ]
                for (_, out), (_, src) in zip(restored, groups):
                    assert out.gids.tolist() == src.gids.tolist()
                    assert out.starts.tolist() == src.starts.tolist()
                    assert out.ends.tolist() == src.ends.tolist()
                    assert out.tag_codes.tolist() == src.tag_codes.tolist()
                    assert out.tags == src.tags
                # Views alias the segment; drop them before close().
                del restored, out, src
            finally:
                attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_task_metadata(self):
        groups = _sample_groups()
        task, shm = pack_reduce_task(groups)
        try:
            assert task.total_rows == 3
            assert task.keys == [7, (0, 1)]
            assert task.lengths == [2, 1]
            assert task.nbytes == 3 * 26
        finally:
            shm.close()
            shm.unlink()

    def test_empty_task_needs_no_segment(self):
        task, shm = pack_reduce_task([])
        assert shm is None
        restored, attached = unpack_reduce_task(task)
        assert restored == []
        assert attached is None
        assert task.nbytes == 0
