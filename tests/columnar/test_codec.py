"""Key codecs: int64 round-trips, native decode, compact recodings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar.codec import KEY_CODECS, CellKeyCodec, IntKeyCodec


class TestIntKeyCodec:
    codec = KEY_CODECS["int"]

    def test_roundtrip_is_identity(self):
        for value in (0, 1, 7, 2**31, 2**40):
            assert self.codec.decode(value) == value

    def test_decode_is_native_int(self):
        decoded = self.codec.decode(np.int64(3))
        assert type(decoded) is int
        assert repr(decoded) == "3"

    def test_encode_array_dtype(self):
        encoded = IntKeyCodec.encode_array([1, 2, 3])
        assert encoded.dtype == np.int64

    def test_compact_small_codes(self):
        codes = np.asarray([0, 5, 17, 32766], dtype=np.int64)
        compact = self.codec.compact_codes(codes)
        assert compact is not None
        assert compact.dtype == np.int16
        # Monotone: sorting compact == sorting the codes.
        assert np.array_equal(np.argsort(compact), np.argsort(codes))

    def test_compact_refuses_wide_range(self):
        assert self.codec.compact_codes(
            np.asarray([0, 2**15], dtype=np.int64)
        ) is None

    def test_compact_empty(self):
        assert self.codec.compact_codes(np.empty(0, dtype=np.int64)) is None


class TestCellKeyCodec:
    codec = KEY_CODECS["cell"]

    @pytest.mark.parametrize("cell", [(0, 0), (1, 2), (7, 0), (2**20, 3)])
    def test_roundtrip(self, cell):
        assert self.codec.decode(CellKeyCodec.encode_cell(cell)) == cell

    def test_decode_is_native_tuple(self):
        code = CellKeyCodec.encode_cell((np.int64(1), np.int64(2)))
        decoded = self.codec.decode(np.int64(code))
        assert decoded == (1, 2)
        assert repr(decoded) == "(1, 2)"

    def test_compact_matches_code_order(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 12, size=200)
        cols = rng.integers(0, 12, size=200)
        codes = np.asarray(
            [CellKeyCodec.encode_cell(c) for c in zip(rows, cols)],
            dtype=np.int64,
        )
        compact = self.codec.compact_codes(codes)
        assert compact is not None
        assert compact.dtype == np.int16
        assert np.array_equal(
            np.argsort(compact, kind="stable"),
            np.argsort(codes, kind="stable"),
        )

    def test_compact_refuses_large_grid(self):
        codes = np.asarray(
            [CellKeyCodec.encode_cell((200, j)) for j in (0, 200)],
            dtype=np.int64,
        )
        assert self.codec.compact_codes(codes) is None

    def test_kind_registry(self):
        assert KEY_CODECS["int"].kind == "int"
        assert KEY_CODECS["cell"].kind == "cell"
