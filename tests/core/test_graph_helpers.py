"""Tests for join-graph helper utilities."""

from repro.core.graph import JoinGraph, component_order_matrix
from repro.core.query import IntervalJoinQuery


class TestComponentOrderMatrix:
    def test_chain_orders_sorted(self):
        q = IntervalJoinQuery.parse(
            [("A", "before", "B"), ("B", "before", "C")]
        )
        graph = JoinGraph(q)
        matrix = component_order_matrix(graph)
        assert matrix == sorted(graph.component_orders)
        assert len(matrix) == 2

    def test_no_orders_for_pure_colocation(self):
        q = IntervalJoinQuery.parse(
            [("A", "overlaps", "B"), ("B", "overlaps", "C")]
        )
        assert component_order_matrix(JoinGraph(q)) == []

    def test_mixed_hybrid(self):
        q = IntervalJoinQuery.parse(
            [
                ("A", "overlaps", "B"),
                ("B", "before", "C"),
                ("C", "overlaps", "D"),
            ]
        )
        graph = JoinGraph(q)
        matrix = component_order_matrix(graph)
        assert len(matrix) == 1
        early, late = matrix[0]
        assert graph.components[early].relations == {"A", "B"}
        assert graph.components[late].relations == {"C", "D"}
