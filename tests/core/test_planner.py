"""Unit tests for planning and the high-level execute() entry point."""

import pytest

from tests.conftest import assert_matches_reference, make_dataset

from repro.errors import PlanningError
from repro.core.executor import execute
from repro.core.planner import ALGORITHMS, choose_algorithm, plan
from repro.core.query import IntervalJoinQuery
from repro.core.results import ExecutionMetrics
from repro.core.schema import Relation
from repro.intervals.interval import Interval


class TestChooseAlgorithm:
    def test_two_way_short_circuit(self):
        q = IntervalJoinQuery.parse([("A", "overlaps", "B")])
        assert choose_algorithm(q).name == "two_way"

    def test_colocation_gets_rccis(self):
        q = IntervalJoinQuery.parse(
            [("A", "overlaps", "B"), ("B", "overlaps", "C")]
        )
        assert choose_algorithm(q).name == "rccis"

    def test_sequence_gets_all_matrix(self):
        q = IntervalJoinQuery.parse(
            [("A", "before", "B"), ("B", "before", "C")]
        )
        assert choose_algorithm(q).name == "all_matrix"

    def test_hybrid_gets_asm_or_pasm(self):
        q = IntervalJoinQuery.parse(
            [("A", "before", "B"), ("A", "overlaps", "C")]
        )
        assert choose_algorithm(q).name == "all_seq_matrix"
        assert choose_algorithm(q, prune=True).name == "pasm"

    def test_general_gets_gen_matrix(self):
        q = IntervalJoinQuery.parse(
            [("A.I", "overlaps", "B.I"), ("A.x", "=", "B.x")]
        )
        assert choose_algorithm(q).name == "gen_matrix"

    def test_registry_contains_all_algorithms(self):
        assert set(ALGORITHMS) == {
            "two_way",
            "two_way_cascade",
            "all_replicate",
            "rccis",
            "all_matrix",
            "all_seq_matrix",
            "pasm",
            "gen_matrix",
            "fcts",
            "fstc",
        }


class TestPlan:
    def test_provably_empty(self):
        q = IntervalJoinQuery.parse(
            [("A", "before", "B"), ("B", "before", "C"), ("C", "before", "A")]
        )
        p = plan(q)
        assert p.provably_empty
        assert p.algorithm is None

    def test_satisfiable_plan(self):
        q = IntervalJoinQuery.parse([("A", "overlaps", "B")])
        p = plan(q)
        assert not p.provably_empty
        assert p.algorithm is not None


class TestExecute:
    def test_default_planner(self):
        data = make_dataset(["A", "B", "C"], 25, seed=1)
        q = IntervalJoinQuery.parse(
            [("A", "overlaps", "B"), ("B", "overlaps", "C")]
        )
        result = execute(q, data, num_partitions=4)
        assert result.metrics.algorithm == "rccis"
        assert_matches_reference(q, data, result)

    def test_algorithm_by_name(self):
        data = make_dataset(["A", "B"], 20, seed=2)
        q = IntervalJoinQuery.parse([("A", "overlaps", "B")])
        result = execute(q, data, algorithm="all_replicate")
        assert result.metrics.algorithm == "all_replicate"

    def test_algorithm_instance(self):
        from repro.core.algorithms.rccis import RCCIS

        data = make_dataset(["A", "B", "C"], 10, seed=3)
        q = IntervalJoinQuery.parse(
            [("A", "overlaps", "B"), ("B", "overlaps", "C")]
        )
        result = execute(q, data, algorithm=RCCIS())
        assert result.metrics.algorithm == "rccis"

    def test_unknown_algorithm(self):
        data = make_dataset(["A", "B"], 5)
        q = IntervalJoinQuery.parse([("A", "overlaps", "B")])
        with pytest.raises(PlanningError):
            execute(q, data, algorithm="quantum")

    def test_empty_query_answered_without_jobs(self):
        q = IntervalJoinQuery.parse(
            [("A", "before", "B"), ("B", "before", "C"), ("C", "before", "A")]
        )
        data = make_dataset(["A", "B", "C"], 10, seed=4)
        result = execute(q, data)
        assert len(result) == 0
        assert result.metrics.num_cycles == 0

    def test_missing_relation_rejected(self):
        q = IntervalJoinQuery.parse([("A", "overlaps", "B")])
        with pytest.raises(Exception):
            execute(q, {"A": Relation("A", [])})


class TestResults:
    def test_same_output(self):
        data = make_dataset(["A", "B"], 15, seed=5)
        q = IntervalJoinQuery.parse([("A", "overlaps", "B")])
        r1 = execute(q, data, algorithm="two_way")
        r2 = execute(q, data, algorithm="all_replicate")
        assert r1.same_output(r2)

    def test_metrics_combine(self):
        a = ExecutionMetrics(algorithm="a", num_cycles=1, shuffled_records=10)
        b = ExecutionMetrics(algorithm="b", num_cycles=2, shuffled_records=5)
        merged = ExecutionMetrics.combine("c", [a, b])
        assert merged.num_cycles == 3
        assert merged.shuffled_records == 15

    def test_load_summary_properties(self):
        m = ExecutionMetrics(algorithm="x", reducer_loads={0: 10, 1: 30})
        assert m.max_reducer_load == 30
        assert m.mean_reducer_load == 20
