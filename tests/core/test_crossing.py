"""Unit tests for the crossing-set finder, cross-checked against a
brute-force enumeration of the Section-5 definitions plus the late-escape
condition (see the crossing module docstring: a set whose absent
relations are all order-dominated by the present ones — including the
vacuous full-relation-set case the paper excludes by remark — never needs
replication)."""

import itertools
import random

import pytest

from repro.core.algorithms.crossing import (
    CrossingSetFinder,
    has_late_escape,
    order_reachability,
)
from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning
from repro.intervals.sets import crosses, is_consistent, normalize_conditions


def brute_force_replicable(relations, conditions, partitioning, index, intervals):
    """Enumerate every interval-set (one interval from a subset of
    relations) and mark intervals in a consistent crossing set whose
    presence pattern has a late escape."""
    flagged = {name: [False] * len(intervals.get(name, [])) for name in relations}
    choices = {
        name: list(enumerate(intervals.get(name, []))) for name in relations
    }
    reach = order_reachability(list(relations), list(conditions))
    for r in range(1, len(relations) + 1):
        for subset in itertools.combinations(relations, r):
            if not has_late_escape(frozenset(subset), relations, reach):
                continue
            for combo in itertools.product(*(choices[name] for name in subset)):
                interval_set = {
                    name: iv for name, (_, iv) in zip(subset, combo)
                }
                if is_consistent(interval_set, conditions) and crosses(
                    interval_set, conditions, partitioning, index
                ):
                    for name, (position, _) in zip(subset, combo):
                        flagged[name][position] = True
    return flagged


class TestLateEscape:
    def test_full_pattern_never_escapes(self):
        conditions = normalize_conditions(CHAIN)
        relations = ["R1", "R2", "R3"]
        reach = order_reachability(relations, list(conditions))
        assert not has_late_escape(
            frozenset(relations), relations, reach
        )

    def test_missing_tail_escapes(self):
        conditions = normalize_conditions(CHAIN)
        relations = ["R1", "R2", "R3"]
        reach = order_reachability(relations, list(conditions))
        # R3 absent: no order path R3 <= {R1, R2} -> escape.
        assert has_late_escape(frozenset({"R1", "R2"}), relations, reach)

    def test_missing_head_does_not_escape(self):
        conditions = normalize_conditions(CHAIN)
        relations = ["R1", "R2", "R3"]
        reach = order_reachability(relations, list(conditions))
        # R1 absent: R1 <= R2 holds -> completions extend leftward only.
        assert not has_late_escape(frozenset({"R2", "R3"}), relations, reach)


def random_intervals(rng, n, lo, hi, max_len):
    out = []
    for _ in range(n):
        start = rng.uniform(lo, hi)
        out.append(Interval(start, start + rng.uniform(0, max_len)))
    return out


CHAIN = [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
STAR = [("R1", "contains", "R2"), ("R1", "contains", "R3")]
MIXED = [("R1", "overlaps", "R2"), ("R2", "contains", "R3")]
CYCLE = [
    ("R1", "overlaps", "R2"),
    ("R2", "overlaps", "R3"),
    ("R1", "overlaps", "R3"),
]


@pytest.mark.parametrize("conditions", [CHAIN, STAR, MIXED, CYCLE])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_finder_matches_brute_force(conditions, seed):
    relations = sorted({n for l, _, r in conditions for n in (l, r)})
    normalized = normalize_conditions(conditions)
    partitioning = Partitioning.uniform(0, 60, 3)
    rng = random.Random(seed)
    index = 1  # middle partition
    part = partitioning.partition_interval(index)
    # All intervals must intersect the partition (the reducer's split
    # input); sample intervals straddling it in various ways.
    intervals = {}
    for name in relations:
        ivs = []
        for _ in range(8):
            start = rng.uniform(part.start - 15, part.end - 0.1)
            length = rng.uniform(0, 30)
            iv = Interval(start, start + length)
            if iv.intersects(part):
                ivs.append(iv)
        intervals[name] = ivs

    finder = CrossingSetFinder(relations, list(normalized), partitioning, index)
    masks = finder.replicable(intervals)
    want = brute_force_replicable(
        relations, normalized, partitioning, index, intervals
    )
    for name in relations:
        got = [bool(x) for x in masks[name]]
        assert got == want[name], f"{name}: got={got} want={want[name]}"


def test_empty_domains():
    conditions = normalize_conditions(CHAIN)
    partitioning = Partitioning.uniform(0, 30, 3)
    finder = CrossingSetFinder(
        ["R1", "R2", "R3"], list(conditions), partitioning, 1
    )
    masks = finder.replicable({"R1": [], "R2": [], "R3": []})
    assert all(len(mask) == 0 for mask in masks.values())


def test_last_partition_flags_nothing_for_chain():
    # In the final partition nothing can cross the right boundary, so a
    # chain query (whose crossing sets need rightward continuation for
    # the tail relation) flags fewer intervals; brute force agrees.
    conditions = normalize_conditions(CHAIN)
    partitioning = Partitioning.uniform(0, 30, 3)
    rng = random.Random(9)
    part = partitioning.partition_interval(2)
    intervals = {
        name: [
            iv
            for iv in random_intervals(rng, 6, part.start - 10, part.end - 0.1, 15)
            if iv.intersects(part)
        ]
        for name in ("R1", "R2", "R3")
    }
    finder = CrossingSetFinder(
        ["R1", "R2", "R3"], list(conditions), partitioning, 2
    )
    masks = finder.replicable(intervals)
    want = brute_force_replicable(
        ("R1", "R2", "R3"), conditions, partitioning, 2, intervals
    )
    for name in ("R1", "R2", "R3"):
        assert [bool(x) for x in masks[name]] == want[name]


def test_tree_detection():
    assert CrossingSetFinder._edges_form_tree(["R1", "R2", "R3"], [0, 1])
    assert not CrossingSetFinder._edges_form_tree(
        ["R1", "R2", "R3"], [0, 1, 2]
    )


def test_too_many_relations_rejected():
    conditions = normalize_conditions(
        [(f"R{i}", "overlaps", f"R{i+1}") for i in range(1, 20)]
    )
    partitioning = Partitioning.uniform(0, 30, 3)
    with pytest.raises(ValueError):
        CrossingSetFinder(
            [f"R{i}" for i in range(1, 21)], list(conditions), partitioning, 1
        )
