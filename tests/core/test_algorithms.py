"""Unit tests for each algorithm's specific behaviour (correctness
against the oracle is covered exhaustively in tests/integration and
tests/properties; here we test algorithm-specific contracts)."""

import pytest

from tests.conftest import assert_matches_reference, make_dataset

from repro.errors import PlanningError
from repro.core.algorithms.all_replicate import AllReplicate, maximal_relations
from repro.core.algorithms.cascade import TwoWayCascade
from repro.core.algorithms.gen_matrix import (
    AllMatrix,
    AllSeqMatrix,
    GenMatrix,
    GridSpec,
    default_grid_parts,
)
from repro.core.algorithms.hybrid import FCTS, FSTC
from repro.core.algorithms.pasm import PASM
from repro.core.algorithms.rccis import RCCIS
from repro.core.algorithms.two_way import TwoWayJoin
from repro.core.algorithms.base import build_partitioning
from repro.core.graph import JoinGraph
from repro.core.query import IntervalJoinQuery
from repro.core.schema import Relation
from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning


Q_COLOCATION = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
Q_SEQUENCE = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)
Q_HYBRID = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
)


class TestMaximalRelations:
    def test_chain_has_unique_maximum(self):
        assert maximal_relations(Q_COLOCATION) == ["R3"]
        assert maximal_relations(Q_SEQUENCE) == ["R3"]

    def test_fork_has_no_maximum(self):
        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R1", "overlaps", "R3")]
        )
        assert maximal_relations(q) == []

    def test_equals_makes_both_maximal(self):
        q = IntervalJoinQuery.parse([("R1", "equals", "R2")])
        assert sorted(maximal_relations(q)) == ["R1", "R2"]


class TestRCCIS:
    def test_rejects_non_colocation(self):
        data = make_dataset(["R1", "R2", "R3"], 5)
        with pytest.raises(PlanningError):
            RCCIS().run(Q_SEQUENCE, data)

    def test_replicates_fewer_intervals_than_all_rep(self):
        data = make_dataset(["R1", "R2", "R3"], 200, seed=2, span=2000,
                            max_length=30)
        rccis = RCCIS().run(Q_COLOCATION, data, num_partitions=16)
        allrep = AllReplicate().run(Q_COLOCATION, data, num_partitions=16)
        assert rccis.same_output(allrep)
        assert (
            rccis.metrics.replicated_intervals
            < allrep.metrics.replicated_intervals
        )

    def test_two_cycles(self):
        data = make_dataset(["R1", "R2", "R3"], 30, seed=3)
        result = RCCIS().run(Q_COLOCATION, data, num_partitions=4)
        assert result.metrics.num_cycles == 2

    def test_single_partition_degenerates_gracefully(self):
        data = make_dataset(["R1", "R2", "R3"], 30, seed=4)
        result = RCCIS().run(Q_COLOCATION, data, num_partitions=1)
        assert_matches_reference(Q_COLOCATION, data, result)

    def test_equi_depth_partitioning(self):
        data = make_dataset(["R1", "R2", "R3"], 60, seed=5)
        result = RCCIS().run(
            Q_COLOCATION, data, num_partitions=6,
            partition_strategy="equi_depth",
        )
        assert_matches_reference(Q_COLOCATION, data, result)


class TestAllReplicate:
    def test_single_cycle(self):
        data = make_dataset(["R1", "R2", "R3"], 30, seed=6)
        result = AllReplicate().run(Q_COLOCATION, data, num_partitions=4)
        assert result.metrics.num_cycles == 1

    def test_projects_maximal_relation(self):
        # With a unique maximal relation only |R1|+|R2| intervals are
        # replicated.
        data = make_dataset(["R1", "R2", "R3"], 30, seed=7)
        result = AllReplicate().run(Q_COLOCATION, data, num_partitions=4)
        assert result.metrics.replicated_intervals == 60

    def test_fork_replicates_everything(self):
        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R1", "overlaps", "R3")]
        )
        data = make_dataset(["R1", "R2", "R3"], 30, seed=8)
        result = AllReplicate().run(q, data, num_partitions=4)
        assert result.metrics.replicated_intervals == 90
        assert_matches_reference(q, data, result)

    def test_handles_sequence_queries(self):
        data = make_dataset(["R1", "R2", "R3"], 25, seed=9)
        result = AllReplicate().run(Q_SEQUENCE, data, num_partitions=4)
        assert_matches_reference(Q_SEQUENCE, data, result)


class TestTwoWayCascade:
    def test_cycle_count_is_steps(self):
        data = make_dataset(["R1", "R2", "R3"], 30, seed=10)
        result = TwoWayCascade().run(Q_COLOCATION, data, num_partitions=4)
        assert result.metrics.num_cycles == 2  # 3 relations -> 2 joins

    def test_four_way(self):
        q = IntervalJoinQuery.parse(
            [
                ("R1", "overlaps", "R2"),
                ("R2", "contains", "R3"),
                ("R3", "overlaps", "R4"),
            ]
        )
        data = make_dataset(["R1", "R2", "R3", "R4"], 25, seed=11)
        result = TwoWayCascade().run(q, data, num_partitions=4)
        assert result.metrics.num_cycles == 3
        assert_matches_reference(q, data, result)

    def test_sequence_steps_use_grid(self):
        data = make_dataset(["R1", "R2", "R3"], 20, seed=12)
        result = TwoWayCascade(grid_parts=4).run(
            Q_SEQUENCE, data, num_partitions=4
        )
        assert_matches_reference(Q_SEQUENCE, data, result)


class TestGridSpec:
    def test_paper_q2_grid_counts(self):
        # 3 dims, o=6, chain order: C(8,3)=56 non-decreasing triples.
        parts = Partitioning.uniform(0, 100, 6)
        grid = GridSpec(JoinGraph(Q_SEQUENCE), parts)
        assert grid.total_cells == 216
        assert len(grid.cells) == 56

    def test_paper_q5_grid_counts(self):
        # Q5: 4 dims, o=5, one order -> 375 of 625 (paper's exact number).
        q5 = IntervalJoinQuery.parse(
            [
                ("R1.I", "before", "R2.I"),
                ("R1.I", "overlaps", "R3.I"),
                ("R1.A", "=", "R3.A"),
                ("R2.B", "=", "R3.B"),
            ]
        )
        parts = Partitioning.uniform(0, 100, 5)
        grid = GridSpec(JoinGraph(q5), parts)
        assert grid.total_cells == 625
        assert len(grid.cells) == 375

    def test_unjustified_order_keeps_all_cells(self):
        # Colocation chain extending past the sequence endpoint: pruning
        # would be unsound, so no cells may be dropped.
        q = IntervalJoinQuery.parse(
            [
                ("R1", "overlaps", "R2"),
                ("R2", "overlaps", "R2b"),
                ("R1", "before", "R4"),
            ]
        )
        parts = Partitioning.uniform(0, 100, 4)
        grid = GridSpec(JoinGraph(q), parts)
        assert len(grid.cells) == grid.total_cells

    def test_justified_order_prunes(self):
        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R2", "before", "R4")]
        )
        parts = Partitioning.uniform(0, 100, 4)
        grid = GridSpec(JoinGraph(q), parts)
        assert len(grid.cells) == 10  # non-decreasing pairs of 4
        assert grid.total_cells == 16

    def test_default_grid_parts(self):
        assert default_grid_parts(16, 1) == 16
        assert default_grid_parts(16, 2) == 4
        assert default_grid_parts(16, 4) == 2


class TestMatrixFamily:
    def test_all_matrix_rejects_colocation(self):
        data = make_dataset(["R1", "R2", "R3"], 5)
        with pytest.raises(PlanningError):
            AllMatrix().run(Q_COLOCATION, data)

    def test_all_matrix_single_cycle(self):
        data = make_dataset(["R1", "R2", "R3"], 20, seed=13)
        result = AllMatrix().run(Q_SEQUENCE, data, num_partitions=4)
        assert result.metrics.num_cycles == 1
        assert result.metrics.consistent_reducers == 20  # C(6,2) over o=4

    def test_all_seq_matrix_two_cycles_for_hybrid(self):
        data = make_dataset(["R1", "R2", "R3"], 20, seed=14)
        result = AllSeqMatrix().run(Q_HYBRID, data, num_partitions=4)
        assert result.metrics.num_cycles == 2

    def test_all_seq_matrix_rejects_multi_attribute(self):
        q = IntervalJoinQuery.parse(
            [("R1.I", "overlaps", "R2.I"), ("R1.A", "=", "R2.A")]
        )
        data = {
            "R1": Relation.of_records("R1", [{"I": Interval(0, 1), "A": 1}]),
            "R2": Relation.of_records("R2", [{"I": Interval(0, 2), "A": 1}]),
        }
        with pytest.raises(PlanningError):
            AllSeqMatrix().run(q, data)
        # ... but GenMatrix accepts it.
        result = GenMatrix().run(q, data, num_partitions=3)
        assert_matches_reference(q, data, result)

    def test_explicit_grid_parts(self):
        data = make_dataset(["R1", "R2", "R3"], 20, seed=15)
        result = AllMatrix(grid_parts=6).run(
            Q_SEQUENCE, data, num_partitions=999
        )
        assert result.metrics.consistent_reducers == 56


class TestHybridBaselines:
    def test_fcts_matches_reference(self):
        data = make_dataset(["R1", "R2", "R3"], 30, seed=16)
        result = FCTS().run(Q_HYBRID, data, num_partitions=4)
        assert_matches_reference(Q_HYBRID, data, result)

    def test_fstc_matches_reference(self):
        data = make_dataset(["R1", "R2", "R3"], 30, seed=17)
        result = FSTC().run(Q_HYBRID, data, num_partitions=4)
        assert_matches_reference(Q_HYBRID, data, result)

    def test_fstc_rejects_pure_colocation(self):
        data = make_dataset(["R1", "R2", "R3"], 5)
        with pytest.raises(PlanningError):
            FSTC().run(Q_COLOCATION, data)

    def test_fstc_rejects_disconnected_sequence_subquery(self):
        # Two sequence islands bridged only by a colocation edge.
        q = IntervalJoinQuery.parse(
            [
                ("R1", "before", "R2"),
                ("R2", "overlaps", "R3"),
                ("R3", "before", "R4"),
            ]
        )
        data = make_dataset(["R1", "R2", "R3", "R4"], 5)
        with pytest.raises(PlanningError):
            FSTC().run(q, data)

    def test_fcts_handles_that_query(self):
        q = IntervalJoinQuery.parse(
            [
                ("R1", "before", "R2"),
                ("R2", "overlaps", "R3"),
                ("R3", "before", "R4"),
            ]
        )
        data = make_dataset(["R1", "R2", "R3", "R4"], 15, seed=44)
        result = FCTS().run(q, data, num_partitions=3)
        assert_matches_reference(q, data, result)

    def test_fcts_counts_component_cycles(self):
        data = make_dataset(["R1", "R2", "R3"], 20, seed=18)
        result = FCTS().run(Q_HYBRID, data, num_partitions=4)
        # RCCIS (2 cycles) for the {R1, R3} component + 1 matrix job.
        assert result.metrics.num_cycles == 3


class TestPASM:
    def test_matches_all_seq_matrix(self):
        data = make_dataset(["R1", "R2", "R3"], 40, seed=19)
        pasm = PASM().run(Q_HYBRID, data, num_partitions=4)
        asm = AllSeqMatrix().run(Q_HYBRID, data, num_partitions=4)
        assert pasm.same_output(asm)

    def test_three_cycles(self):
        data = make_dataset(["R1", "R2", "R3"], 20, seed=20)
        result = PASM().run(Q_HYBRID, data, num_partitions=4)
        assert result.metrics.num_cycles == 3

    def test_pruning_engages_when_component_join_is_selective(self):
        # R3 tiny and short => most R1 rows never appear in the R1-R3
        # colocation join and must be pruned.
        data = {
            "R1": make_dataset(["R1"], 200, seed=21, span=1000)["R1"],
            "R2": make_dataset(["R2"], 50, seed=22, span=1000)["R2"],
            "R3": Relation.of_intervals(
                "R3", [Interval(100, 101), Interval(500, 502)]
            ),
        }
        result = PASM().run(Q_HYBRID, data, num_partitions=8)
        assert result.metrics.pruned_rows > 0
        assert_matches_reference(Q_HYBRID, data, result)

    def test_pruned_grid_ships_fewer_pairs(self):
        data = {
            "R1": make_dataset(["R1"], 300, seed=23, span=2000)["R1"],
            "R2": make_dataset(["R2"], 50, seed=24, span=2000)["R2"],
            "R3": Relation.of_intervals("R3", [Interval(900, 905)]),
        }
        pasm = PASM().run(Q_HYBRID, data, num_partitions=6)
        asm = AllSeqMatrix().run(Q_HYBRID, data, num_partitions=6)
        assert pasm.same_output(asm)
        # The pruned grid cycle ships fewer pairs than ASM's grid cycle
        # even though PASM ran one more cycle overall.
        assert pasm.metrics.pruned_rows > 0


class TestTwoWay:
    def test_rejects_multiway(self):
        data = make_dataset(["R1", "R2", "R3"], 5)
        with pytest.raises(PlanningError):
            TwoWayJoin().run(Q_COLOCATION, data)

    def test_before_replication_counts(self):
        r1 = Relation.of_intervals("R1", [Interval(0, 1)])
        r2 = Relation.of_intervals("R2", [Interval(50, 60)])
        q = IntervalJoinQuery.parse([("R1", "before", "R2")])
        result = TwoWayJoin().run(q, {"R1": r1, "R2": r2}, num_partitions=4)
        assert result.metrics.replicated_intervals == 1
        assert result.metrics.replicated_pairs == 4  # all partitions
        assert len(result) == 1


class TestPartitioningHelpers:
    def test_build_partitioning_covers_all_starts(self):
        data = make_dataset(["R1", "R2", "R3"], 50, seed=25)
        parts = build_partitioning(Q_COLOCATION, data, 8)
        for name in data:
            for row in data[name].rows:
                index = parts.project(row.interval("I"))
                assert 0 <= index < len(parts)

    def test_build_partitioning_empty_data(self):
        q = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        data = {"R1": Relation("R1", []), "R2": Relation("R2", [])}
        parts = build_partitioning(q, data, 4)
        assert len(parts) == 4
