"""Unit tests for output validation and job history."""

import pytest

from tests.conftest import make_dataset

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.core.results import ExecutionMetrics, JoinResult
from repro.core.schema import Row
from repro.core.validation import (
    ValidationError,
    assert_equivalent,
    validate_result,
)
from repro.intervals.interval import Interval
from repro.mapreduce.task import Reducer


Q = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)


class CountReducer(Reducer):
    """Module-level so the ``processes`` executor can pickle it."""

    def reduce(self, key, values, ctx):
        ctx.counters.increment("work", "comparisons", len(values))
        ctx.emit((key, len(values)))


def run(data, algorithm="rccis"):
    return execute(Q, data, algorithm=algorithm, num_partitions=4)


class TestValidateResult:
    def test_valid_result_passes(self):
        data = make_dataset(["R1", "R2", "R3"], 30, seed=1)
        result = run(data)
        validate_result(result, data)

    def test_detects_predicate_violation(self):
        data = make_dataset(["R1", "R2", "R3"], 10, seed=2)
        result = run(data)
        bogus = (
            data["R1"].rows[0],
            data["R2"].rows[0],
            data["R3"].rows[0],
        )
        tampered = JoinResult(
            Q, list(result.tuples) + [bogus], result.metrics
        )
        # The bogus tuple almost surely violates a condition; if by luck
        # it satisfies them, it duplicates an existing tuple instead.
        with pytest.raises(ValidationError):
            validate_result(tampered, data)
            # force failure if the bogus tuple was genuinely valid & new
            raise ValidationError("unexpectedly valid")

    def test_detects_duplicates(self):
        data = make_dataset(["R1", "R2", "R3"], 30, seed=3)
        result = run(data)
        if not result.tuples:
            pytest.skip("no output at this seed")
        tampered = JoinResult(
            Q, list(result.tuples) + [result.tuples[0]], result.metrics
        )
        with pytest.raises(ValidationError, match="more than once"):
            validate_result(tampered, data)

    def test_detects_wrong_arity(self):
        data = make_dataset(["R1", "R2", "R3"], 10, seed=4)
        result = run(data)
        tampered = JoinResult(
            Q, [(data["R1"].rows[0],)], result.metrics
        )
        with pytest.raises(ValidationError, match="arity"):
            validate_result(tampered)

    def test_detects_foreign_row(self):
        data = make_dataset(["R1", "R2", "R3"], 10, seed=5)
        result = run(data)
        alien = Row.make(9999, {"I": Interval(0, 1)})
        tampered = JoinResult(
            Q,
            [(alien, data["R2"].rows[0], data["R3"].rows[0])],
            result.metrics,
        )
        with pytest.raises(ValidationError):
            validate_result(tampered, data)


class TestAssertEquivalent:
    def test_identical_results_pass(self):
        data = make_dataset(["R1", "R2", "R3"], 25, seed=6)
        a = run(data, "rccis")
        b = run(data, "all_replicate")
        assert_equivalent(a, b)
        assert_equivalent(a, b, sample=5)

    def test_mismatch_detected(self):
        data = make_dataset(["R1", "R2", "R3"], 25, seed=7)
        a = run(data)
        if not a.tuples:
            pytest.skip("no output at this seed")
        b = JoinResult(Q, a.tuples[:-1], ExecutionMetrics(algorithm="b"))
        with pytest.raises(ValidationError):
            assert_equivalent(a, b)
        with pytest.raises(ValidationError):
            assert_equivalent(a, b, sample=len(a.tuples))


class TestJobHistory:
    def test_record_and_totals(self, tmp_path):
        from repro.mapreduce.history import JobHistory
        from repro.mapreduce.fs import InMemoryFileSystem
        from repro.mapreduce.job import InputSpec, JobConf
        from repro.mapreduce.runner import run_job
        from repro.mapreduce.task import IdentityMapper

        fs = InMemoryFileSystem()
        fs.write("in", list(range(10)))
        result = run_job(
            fs,
            JobConf(
                name="count",
                inputs=[InputSpec("in", IdentityMapper())],
                reducer=CountReducer(),
                output="out",
                num_reduce_tasks=2,
            ),
        )
        history = JobHistory()
        record = history.record(result)
        assert record.map_input_records == 10
        assert record.user_counters["work"]["comparisons"] == 10
        assert history.totals()["jobs"] == 1

        path = str(tmp_path / "history.json")
        history.save(path)
        loaded = JobHistory.load(path)
        assert len(loaded) == 1
        assert loaded.records[0] == record
