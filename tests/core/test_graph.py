"""Unit tests for join graphs, components, and component ordering."""

import pytest

from repro.errors import UnsatisfiableQueryError
from repro.core.graph import JoinGraph
from repro.core.query import IntervalJoinQuery, Term


def graph_of(conditions):
    return JoinGraph(IntervalJoinQuery.parse(conditions))


class TestComponents:
    def test_paper_q3_two_components(self):
        # Q3 = R1 ov R2, R2 ov R3, R2 before R4, R4 ov R5
        g = graph_of(
            [
                ("R1", "overlaps", "R2"),
                ("R2", "overlaps", "R3"),
                ("R2", "before", "R4"),
                ("R4", "overlaps", "R5"),
            ]
        )
        assert len(g.components) == 2
        relation_sets = sorted(
            sorted(c.relations) for c in g.components
        )
        assert relation_sets == [["R1", "R2", "R3"], ["R4", "R5"]]

    def test_pure_sequence_all_singletons(self):
        g = graph_of([("A", "before", "B"), ("B", "before", "C")])
        assert len(g.components) == 3
        assert all(len(c.terms) == 1 for c in g.components)

    def test_pure_colocation_single_component(self):
        g = graph_of([("A", "overlaps", "B"), ("B", "contains", "C")])
        assert len(g.components) == 1
        assert len(g.components[0].conditions) == 2

    def test_paper_q5_four_components(self):
        # Q5 = R1.I bf R2.I, R1.I ov R3.I, R1.A = R3.A, R2.B = R3.B
        g = graph_of(
            [
                ("R1.I", "before", "R2.I"),
                ("R1.I", "overlaps", "R3.I"),
                ("R1.A", "=", "R3.A"),
                ("R2.B", "=", "R3.B"),
            ]
        )
        assert len(g.components) == 4

    def test_component_of(self):
        g = graph_of([("A", "overlaps", "B"), ("B", "before", "C")])
        comp_a = g.component_of(Term("A", "I"))
        comp_b = g.component_of(Term("B", "I"))
        comp_c = g.component_of(Term("C", "I"))
        assert comp_a is comp_b
        assert comp_a is not comp_c

    def test_components_of_relation(self):
        g = graph_of(
            [("R1.I", "overlaps", "R2.I"), ("R1.A", "=", "R2.A")]
        )
        assert len(g.components_of_relation("R1")) == 2


class TestComponentOrders:
    def test_order_from_before(self):
        g = graph_of([("A", "overlaps", "B"), ("B", "before", "C")])
        ab = g.component_of(Term("A", "I")).index
        c = g.component_of(Term("C", "I")).index
        assert (ab, c) in g.component_orders

    def test_order_from_after_reversed(self):
        g = graph_of([("A", "overlaps", "B"), ("B", "after", "C")])
        ab = g.component_of(Term("A", "I")).index
        c = g.component_of(Term("C", "I")).index
        assert (c, ab) in g.component_orders

    def test_equivalent_orders_are_not_contradictory(self):
        # "A before B" and "B after A" enforce the SAME order.
        g = graph_of([("A", "before", "B"), ("B", "after", "A")])
        assert len(g.component_orders) == 1

    def test_real_contradiction(self):
        with pytest.raises(UnsatisfiableQueryError):
            graph_of([("A", "before", "B"), ("A", "after", "B")])

    def test_order_cycle_unsatisfiable(self):
        with pytest.raises(UnsatisfiableQueryError):
            graph_of(
                [
                    ("A", "before", "B"),
                    ("B", "before", "C"),
                    ("C", "before", "A"),
                ]
            )

    def test_intra_component_sequence_imposes_no_order(self):
        # A-B-C colocation chain plus A before C: one component, no
        # component order (the condition becomes a reducer-side filter).
        g = graph_of(
            [
                ("A", "overlaps", "B"),
                ("B", "overlaps", "C"),
                ("A", "before", "C"),
            ]
        )
        assert len(g.components) == 1
        assert not g.component_orders


class TestProveEmpty:
    def test_cycle_detected_via_graph_or_pc(self):
        # The order cycle raises during construction.
        with pytest.raises(UnsatisfiableQueryError):
            graph_of(
                [
                    ("A", "before", "B"),
                    ("B", "before", "C"),
                    ("C", "before", "A"),
                ]
            )

    def test_pc_catches_subtler_contradictions(self):
        # A contains B but B contains A is contradictory even though no
        # sequence order exists.
        g = graph_of([("A", "contains", "B"), ("B", "contains", "A")])
        assert g.prove_empty()

    def test_satisfiable_not_proven_empty(self):
        g = graph_of([("A", "overlaps", "B"), ("B", "before", "C")])
        assert not g.prove_empty()
