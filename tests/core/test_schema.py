"""Unit tests for rows and relations."""

import pytest

from repro.errors import QueryError
from repro.core.schema import DEFAULT_ATTRIBUTE, Relation, Row
from repro.intervals.interval import Interval


class TestRow:
    def test_make_and_access(self):
        row = Row.make(3, {"I": Interval(0, 5), "A": 2.5})
        assert row.rid == 3
        assert row.value("I") == Interval(0, 5)
        assert row.value("A") == 2.5

    def test_interval_accessor_wraps_scalars(self):
        row = Row.make(0, {"A": 7})
        assert row.interval("A") == Interval(7.0, 7.0)

    def test_interval_accessor_passthrough(self):
        row = Row.make(0, {"I": Interval(1, 2)})
        assert row.interval("I") == Interval(1, 2)

    def test_missing_attribute(self):
        row = Row.make(0, {"I": Interval(1, 2)})
        with pytest.raises(QueryError):
            row.value("missing")

    def test_hashable_and_equal(self):
        a = Row.make(1, {"I": Interval(0, 1)})
        b = Row.make(1, {"I": Interval(0, 1)})
        assert a == b
        assert len({a, b}) == 1

    def test_attributes_sorted(self):
        row = Row.make(0, {"z": 1, "a": 2})
        assert row.attributes == ("a", "z")


class TestRelation:
    def test_of_intervals(self):
        rel = Relation.of_intervals("R", [Interval(0, 1), Interval(2, 3)])
        assert len(rel) == 2
        assert rel.attributes == (DEFAULT_ATTRIBUTE,)
        assert [row.rid for row in rel] == [0, 1]

    def test_of_records(self):
        rel = Relation.of_records(
            "R", [{"x": Interval(0, 1), "v": 5}, {"x": Interval(2, 3), "v": 7}]
        )
        assert rel.attributes == ("v", "x")
        assert rel.rows[1].value("v") == 7

    def test_intervals_accessor(self):
        rel = Relation.of_intervals("R", [Interval(0, 1)])
        assert rel.intervals() == [Interval(0, 1)]

    def test_schema_mismatch_rejected(self):
        rows = [
            Row.make(0, {"I": Interval(0, 1)}),
            Row.make(1, {"J": Interval(0, 1)}),
        ]
        with pytest.raises(QueryError):
            Relation("R", rows)

    def test_duplicate_rids_rejected(self):
        rows = [
            Row.make(0, {"I": Interval(0, 1)}),
            Row.make(0, {"I": Interval(2, 3)}),
        ]
        with pytest.raises(QueryError):
            Relation("R", rows)

    def test_empty_relation(self):
        rel = Relation("R", [])
        assert len(rel) == 0
        assert rel.attributes == ()

    def test_alias_shares_rows(self):
        rel = Relation.of_intervals("R", [Interval(0, 1)])
        other = rel.alias("S")
        assert other.name == "S"
        assert other.rows == rel.rows

    def test_row_by_id(self):
        rel = Relation.of_intervals("R", [Interval(0, 1), Interval(2, 3)])
        assert rel.row_by_id(1).interval("I") == Interval(2, 3)
        with pytest.raises(QueryError):
            rel.row_by_id(99)
