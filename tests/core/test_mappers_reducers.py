"""Granular unit tests for the algorithms' mapper and reducer classes,
exercised directly (outside a job) against hand-built partitionings."""


import pytest

from repro.core.algorithms.rccis import (
    FlaggingReducer,
    JoinReducer,
    RouteMapper,
    SplitMapper,
)
from repro.core.algorithms.two_way import OperatorMapper
from repro.core.query import IntervalJoinQuery
from repro.core.schema import Row
from repro.intervals.allen import MapOperator
from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning
from repro.mapreduce.counters import Counters
from repro.mapreduce.task import MapContext, ReduceContext


PARTS = Partitioning.uniform(0, 40, 4)  # p0..p3, width 10


def row(rid, start, end):
    return Row.make(rid, {"I": Interval(start, end)})


def run_mapper(mapper, records):
    context = MapContext(Counters(), "test")
    for record in records:
        mapper.map(record, context)
    return context.drain(), context.counters


def run_reducer(reducer, key, values):
    context = ReduceContext(Counters(), 0)
    reducer.reduce(key, values, context)
    return context.drain(), context.counters


class TestOperatorMapper:
    def test_project(self):
        mapper = OperatorMapper("R", "I", PARTS, MapOperator.PROJECT)
        pairs, _ = run_mapper(mapper, [row(0, 12, 35)])
        assert [key for key, _ in pairs] == [1]

    def test_split(self):
        mapper = OperatorMapper("R", "I", PARTS, MapOperator.SPLIT)
        pairs, _ = run_mapper(mapper, [row(0, 12, 35)])
        assert [key for key, _ in pairs] == [1, 2, 3]

    def test_replicate_counts(self):
        mapper = OperatorMapper("R", "I", PARTS, MapOperator.REPLICATE)
        pairs, counters = run_mapper(mapper, [row(0, 12, 15)])
        assert [key for key, _ in pairs] == [1, 2, 3]
        assert counters.value("join", "replicated_intervals") == 1
        assert counters.value("join", "replicated_pairs") == 3

    def test_payload_tags_relation(self):
        mapper = OperatorMapper("R", "I", PARTS, MapOperator.PROJECT)
        pairs, _ = run_mapper(mapper, [row(7, 5, 6)])
        (key, (relation, record)) = pairs[0]
        assert relation == "R"
        assert record.rid == 7


class TestSplitMapper:
    def test_emits_one_pair_per_intersecting_partition(self):
        mapper = SplitMapper("R1", "I", PARTS)
        pairs, _ = run_mapper(mapper, [row(0, 8, 22), row(1, 35, 39)])
        keys = sorted(key for key, _ in pairs)
        assert keys == [0, 1, 2, 3]


class TestRouteMapper:
    def test_flagged_replicates_unflagged_projects(self):
        mapper = RouteMapper({"R1": "I"}, PARTS)
        flagged_record = ("R1", row(0, 12, 15), True)
        plain_record = ("R1", row(1, 12, 15), False)
        pairs, counters = run_mapper(mapper, [flagged_record, plain_record])
        flagged_keys = [k for k, (_, r) in pairs if r.rid == 0]
        plain_keys = [k for k, (_, r) in pairs if r.rid == 1]
        assert flagged_keys == [1, 2, 3]
        assert plain_keys == [1]
        assert counters.value("join", "replicated_pairs") == 3


class TestFlaggingReducer:
    @pytest.fixture
    def reducer(self):
        query = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
        )
        return FlaggingReducer(
            query,
            ["R1", "R2", "R3"],
            {"R1": "I", "R2": "I", "R3": "I"},
            PARTS,
        )

    def test_flags_chain_prefix_crossing_right(self, reducer):
        # u ov v, v pokes out of p1's right edge and could meet a later
        # R3 partner -> both flagged; w ending inside p1 has no escape.
        values = [
            ("R1", row(0, 11, 14)),  # u
            ("R2", row(0, 12, 22)),  # v crosses right boundary (20)
        ]
        records, counters = run_reducer(reducer, 1, values)
        flags = {(rel, r.rid): f for rel, r, f in records}
        assert flags[("R1", 0)] is True
        assert flags[("R2", 0)] is True
        assert counters.value("join", "replicated_intervals") == 2

    def test_no_flag_without_rightward_escape(self, reducer):
        # A full consistent triple inside p1: its completion needs no
        # later partner (R3 is the order-maximal relation and present),
        # and nothing crosses right -> nothing flagged.
        values = [
            ("R1", row(0, 11, 14)),
            ("R2", row(0, 12, 16)),
            ("R3", row(0, 13, 18)),
        ]
        records, counters = run_reducer(reducer, 1, values)
        assert all(flag is False for _, _, flag in records)
        assert counters.value("join", "replicated_intervals") == 0

    def test_only_rows_starting_here_are_emitted(self, reducer):
        values = [
            ("R1", row(0, 5, 14)),   # starts in p0: context only
            ("R2", row(0, 12, 16)),  # starts in p1
        ]
        records, _ = run_reducer(reducer, 1, values)
        emitted = {(rel, r.rid) for rel, r, _ in records}
        assert emitted == {("R2", 0)}


class TestJoinReducer:
    @pytest.fixture
    def reducer(self):
        query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        return JoinReducer(query, {"R1": "I", "R2": "I"}, PARTS)

    def test_emits_owned_tuple(self, reducer):
        values = [
            ("R1", row(0, 8, 14)),   # replicated from p0
            ("R2", row(0, 12, 18)),  # local to p1 (the right-most)
        ]
        records, counters = run_reducer(reducer, 1, values)
        assert len(records) == 1
        assert counters.value("work", "comparisons") > 0

    def test_skips_tuples_owned_elsewhere(self, reducer):
        # Both rows start in p0; the pair is owned by p0, so reducer p1
        # must emit nothing even though it received both rows.
        values = [
            ("R1", row(0, 5, 14)),
            ("R2", row(0, 8, 18)),
        ]
        records, _ = run_reducer(reducer, 1, values)
        assert records == []
        records_p0, _ = run_reducer(reducer, 0, values)
        assert len(records_p0) == 1

    def test_no_cross_partition_false_positives(self, reducer):
        # A local R2 row with a replicated R1 row that does NOT overlap.
        values = [
            ("R1", row(0, 1, 3)),    # ends long before
            ("R2", row(0, 12, 18)),
        ]
        records, _ = run_reducer(reducer, 1, values)
        assert records == []
