"""Unit tests for LocalJoiner internals: binding order, anchored starts,
and access-path selection."""

import pytest

from tests.conftest import make_dataset

from repro.core.local import LocalJoiner, _RelationIndex
from repro.core.query import IntervalJoinQuery
from repro.core.reference import reference_join
from repro.core.schema import Row
from repro.intervals.interval import Interval


def rows_of(intervals):
    return [Row.make(i, {"I": iv}) for i, iv in enumerate(intervals)]


class TestRelationIndex:
    @pytest.fixture
    def index(self):
        return _RelationIndex(
            rows_of([Interval(0, 5), Interval(3, 9), Interval(10, 12)]), "I"
        )

    def test_intersecting(self, index):
        got = sorted(r.rid for r in index.intersecting(Interval(4, 6)))
        assert got == [0, 1]

    def test_starting_after(self, index):
        got = sorted(r.rid for r in index.starting_after(3))
        assert got == [2]
        assert sorted(r.rid for r in index.starting_after(2.9)) == [1, 2]

    def test_ending_before(self, index):
        got = sorted(r.rid for r in index.ending_before(9))
        assert got == [0]
        assert sorted(r.rid for r in index.ending_before(20)) == [0, 1, 2]

    def test_scan(self, index):
        assert len(list(index.scan())) == 3


class TestBindingOrder:
    def test_start_with_changes_first_relation(self):
        q = IntervalJoinQuery.parse(
            [("A", "overlaps", "B"), ("B", "overlaps", "C")]
        )
        default = LocalJoiner(q)._binding_order
        anchored = LocalJoiner(q, start_with="C")._binding_order
        assert default[0] == "A"
        assert anchored[0] == "C"
        assert anchored == ["C", "B", "A"]

    def test_start_with_unknown_relation(self):
        q = IntervalJoinQuery.parse([("A", "overlaps", "B")])
        with pytest.raises(ValueError):
            LocalJoiner(q, start_with="Z")

    @pytest.mark.parametrize("start", ["A", "B", "C"])
    def test_any_start_gives_same_output(self, start):
        q = IntervalJoinQuery.parse(
            [("A", "overlaps", "B"), ("B", "before", "C")]
        )
        data = make_dataset(["A", "B", "C"], 20, seed=42)
        rows = {name: data[name].rows for name in data}
        joiner = LocalJoiner(q, start_with=start)
        got = sorted(
            tuple(r.rid for r in t) for t in joiner.join(rows)
        )
        want = reference_join(q, data).tuple_ids()
        assert got == want
