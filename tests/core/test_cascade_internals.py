"""Unit tests for the cascade's planning internals."""


from repro.core.algorithms.cascade import (
    _binding_order,
    _routing_condition,
    _step_conditions,
)
from repro.core.query import IntervalJoinQuery


class TestBindingOrder:
    def test_chain_order_is_connected(self):
        q = IntervalJoinQuery.parse(
            [("A", "overlaps", "B"), ("B", "overlaps", "C")]
        )
        assert _binding_order(q) == ["A", "B", "C"]

    def test_star_stays_connected(self):
        q = IntervalJoinQuery.parse(
            [("Hub", "contains", "S1"), ("Hub", "contains", "S2"),
             ("Hub", "contains", "S3")]
        )
        order = _binding_order(q)
        assert order[0] == "Hub"
        assert set(order) == {"Hub", "S1", "S2", "S3"}

    def test_every_step_touches_bound_set(self):
        q = IntervalJoinQuery.parse(
            [
                ("A", "overlaps", "B"),
                ("C", "before", "B"),
                ("C", "overlaps", "D"),
            ]
        )
        order = _binding_order(q)
        for index in range(1, len(order)):
            assert _step_conditions(q, order[:index], order[index])


class TestStepConditions:
    def test_collects_all_edges_into_bound_set(self):
        q = IntervalJoinQuery.parse(
            [
                ("A", "overlaps", "B"),
                ("B", "overlaps", "C"),
                ("A", "before", "C"),
            ]
        )
        conditions = _step_conditions(q, ["A", "B"], "C")
        assert len(conditions) == 2  # B ov C and A bf C

    def test_ignores_unrelated_conditions(self):
        q = IntervalJoinQuery.parse(
            [("A", "overlaps", "B"), ("B", "overlaps", "C")]
        )
        conditions = _step_conditions(q, ["A"], "C")
        assert conditions == []


class TestRoutingCondition:
    def test_prefers_colocation(self):
        q = IntervalJoinQuery.parse(
            [
                ("A", "before", "C"),
                ("B", "overlaps", "C"),
                ("A", "overlaps", "B"),
            ]
        )
        step = _step_conditions(q, ["A", "B"], "C")
        routing = _routing_condition(step)
        assert routing.is_colocation

    def test_falls_back_to_sequence(self):
        q = IntervalJoinQuery.parse([("A", "before", "B")])
        step = _step_conditions(q, ["A"], "B")
        assert _routing_condition(step).predicate.name == "before"
