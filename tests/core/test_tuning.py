"""Tests for cost-based partition / grid tuning."""

import pytest

from tests.conftest import make_dataset

from repro.errors import PlanningError
from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.core.tuning import (
    profile_data,
    recommend_grid,
    recommend_partitions,
)
from repro.mapreduce.cost import CostModel

Q_COLOCATION = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
Q_SEQUENCE = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)


def scaled_model(scale=2_000.0):
    base = CostModel()
    return CostModel(
        read_cost=base.read_cost * scale,
        shuffle_cost=base.shuffle_cost * scale,
        comparison_cost=base.comparison_cost * scale,
        output_cost=0.0,
        per_cycle_overhead=base.per_cycle_overhead,
    )


class TestProfile:
    def test_profile_statistics(self):
        data = make_dataset(["R1", "R2", "R3"], 50, seed=1, span=100,
                            max_length=10)
        profile = profile_data(Q_COLOCATION, data)
        assert profile.total_rows == 150
        assert profile.rows_per_relation == {"R1": 50, "R2": 50, "R3": 50}
        assert 0 < profile.mean_length <= 10
        assert profile.time_span >= 100 * 0.5

    def test_empty_profile(self):
        from repro.core.schema import Relation

        data = {name: Relation(name, []) for name in ("R1", "R2", "R3")}
        profile = profile_data(Q_COLOCATION, data)
        assert profile.total_rows == 0
        assert profile.mean_length == 0.0


class TestRecommendPartitions:
    def test_rejects_non_colocation(self):
        data = make_dataset(["R1", "R2", "R3"], 5)
        with pytest.raises(PlanningError):
            recommend_partitions(Q_SEQUENCE, data)

    def test_recommendation_is_near_measured_optimum(self):
        data = make_dataset(
            ["R1", "R2", "R3"], 600, seed=4, span=50_000, max_length=500
        )
        cost = scaled_model()
        report = recommend_partitions(
            Q_COLOCATION, data, cost, candidates=(2, 4, 8, 16, 32, 64)
        )
        measured = {
            parts: execute(
                Q_COLOCATION, data, algorithm="rccis",
                num_partitions=parts, cost_model=cost,
            ).metrics.simulated_seconds
            for parts in (2, 4, 8, 16, 32, 64)
        }
        best_measured = min(measured, key=measured.get)
        # The analytic prediction should land within one step of the
        # measured optimum.
        ratio = report.best.partitions / best_measured
        assert 0.5 <= ratio <= 2.0, (report.best.partitions, measured)

    def test_more_boundary_crossing_discourages_fine_partitions(self):
        short = make_dataset(
            ["R1", "R2", "R3"], 200, seed=5, span=50_000, max_length=50
        )
        long = make_dataset(
            ["R1", "R2", "R3"], 200, seed=5, span=50_000, max_length=5_000
        )
        cost = scaled_model()
        report_short = recommend_partitions(Q_COLOCATION, short, cost)
        report_long = recommend_partitions(Q_COLOCATION, long, cost)
        assert report_long.best.partitions <= report_short.best.partitions


class TestRecommendShares:
    def _hybrid_data(self):
        data = make_dataset(["R1"], 300, seed=1)
        data.update(make_dataset(["R2"], 20, seed=2))
        data.update(make_dataset(["R3"], 40, seed=3))
        return data

    def test_rejects_single_dimension(self):
        from repro.core.tuning import recommend_shares

        data = make_dataset(["R1", "R2", "R3"], 5)
        with pytest.raises(PlanningError):
            recommend_shares(Q_COLOCATION, data)

    def test_heavy_dimension_gets_more_shares(self):
        from repro.core.tuning import recommend_shares

        q = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
        )
        rec = recommend_shares(q, self._hybrid_data(), cell_budget=36)
        # Dimension 0 holds R1+R3 (340 rows); dimension 1 holds R2 (20).
        assert rec.shares[0] > rec.shares[1]
        assert rec.total_cells <= 36

    def test_shares_run_correctly_and_ship_less(self):
        from repro.core.planner import ALGORITHMS
        from repro.core.reference import reference_join
        from repro.core.tuning import recommend_shares

        q = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
        )
        data = self._hybrid_data()
        rec = recommend_shares(q, data, cell_budget=36)
        tuned = ALGORITHMS["all_seq_matrix"](grid_parts=rec.shares).run(
            q, data, num_partitions=6
        )
        uniform = ALGORITHMS["all_seq_matrix"](grid_parts=6).run(
            q, data, num_partitions=6
        )
        reference = reference_join(q, data)
        assert tuned.same_output(reference)
        assert uniform.same_output(reference)
        assert tuned.metrics.shuffled_records < uniform.metrics.shuffled_records

    def test_prediction_tracks_measurement(self):
        from repro.core.planner import ALGORITHMS
        from repro.core.tuning import recommend_shares

        q = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
        )
        data = self._hybrid_data()
        rec = recommend_shares(q, data, cell_budget=36)
        result = ALGORITHMS["all_seq_matrix"](grid_parts=rec.shares).run(
            q, data, num_partitions=6
        )
        measured = result.metrics.shuffled_records
        assert 0.5 * measured <= rec.predicted_shuffled <= 2.0 * measured


class TestNonUniformGrid:
    def test_grid_spec_boundary_consistency(self):
        from repro.core.graph import JoinGraph
        from repro.core.algorithms.gen_matrix import GridSpec
        from repro.intervals.partitioning import Partitioning

        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R2", "before", "R4")]
        )
        p_fine = Partitioning.uniform(0, 100, 4)
        p_coarse = Partitioning.uniform(0, 100, 2)
        grid = GridSpec(JoinGraph(q), [p_fine, p_coarse])
        assert grid.total_cells == 8
        # Cell (i, j) survives iff a start in fine partition i can
        # precede one in coarse partition j: i=2,3 (starts >= 50)
        # with j=0 ([0,50)) are impossible... except i can equal: fine
        # partition 2 starts at 50 = coarse 0's end -> pruned.
        assert (3, 0) not in grid.cells
        assert (2, 0) not in grid.cells
        assert (1, 0) in grid.cells  # starts in [25,50) precede < 50
        assert (3, 1) in grid.cells

    @pytest.mark.parametrize("shares", [(4, 2), (2, 5), (6, 1)])
    def test_non_uniform_matches_reference(self, shares):
        from repro.core.planner import ALGORITHMS

        from tests.conftest import assert_matches_reference

        q = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
        )
        data = make_dataset(["R1", "R2", "R3"], 40, seed=11)
        result = ALGORITHMS["all_seq_matrix"](grid_parts=shares).run(
            q, data, num_partitions=4
        )
        assert_matches_reference(q, data, result)

    def test_wrong_share_count_rejected(self):
        from repro.core.planner import ALGORITHMS

        q = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
        )
        data = make_dataset(["R1", "R2", "R3"], 10, seed=12)
        with pytest.raises(PlanningError):
            ALGORITHMS["all_seq_matrix"](grid_parts=(2, 3, 4)).run(
                q, data
            )


class TestRecommendGrid:
    def test_rejects_single_component(self):
        data = make_dataset(["R1", "R2", "R3"], 5)
        with pytest.raises(PlanningError):
            recommend_grid(Q_COLOCATION, data)

    def test_grid_recommendation_sane(self):
        data = make_dataset(
            ["R1", "R2", "R3"], 100, seed=6, span=1_000, max_length=100
        )
        cost = scaled_model()
        report = recommend_grid(Q_SEQUENCE, data, cost)
        assert report.best.partitions >= 2
        assert report.best.predicted_seconds > 0
        # Candidates are monotone in neither direction (U-shape); the
        # chosen one must be the argmin.
        assert report.best.predicted_seconds == min(
            c.predicted_seconds for c in report.candidates
        )

    def test_grid_recommendation_tracks_measurement(self):
        data = make_dataset(
            ["R1", "R2", "R3"], 100, seed=7, span=1_000, max_length=100
        )
        cost = scaled_model()
        report = recommend_grid(
            Q_SEQUENCE, data, cost, candidates=(2, 4, 6, 8)
        )
        measured = {}
        for o in (2, 4, 6, 8):
            from repro.core.planner import ALGORITHMS

            result = ALGORITHMS["all_matrix"](grid_parts=o).run(
                Q_SEQUENCE, data, num_partitions=o, cost_model=cost
            )
            measured[o] = result.metrics.simulated_seconds
        best_measured = min(measured, key=measured.get)
        assert abs(report.best.partitions - best_measured) <= 4, (
            report.best.partitions,
            measured,
        )
