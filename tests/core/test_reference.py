"""Unit tests for the reference (oracle) join on hand-computed cases."""

from repro.core.query import IntervalJoinQuery
from repro.core.reference import reference_join
from repro.core.schema import Relation
from repro.intervals.interval import Interval


class TestReferenceJoin:
    def test_two_way_overlap_hand_computed(self):
        r1 = Relation.of_intervals("R1", [Interval(0, 5), Interval(10, 12)])
        r2 = Relation.of_intervals("R2", [Interval(3, 8), Interval(11, 20)])
        q = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        result = reference_join(q, {"R1": r1, "R2": r2})
        assert result.tuple_ids() == [(0, 0), (1, 1)]

    def test_three_way_chain(self):
        r1 = Relation.of_intervals("R1", [Interval(0, 10)])
        r2 = Relation.of_intervals("R2", [Interval(5, 15), Interval(50, 60)])
        r3 = Relation.of_intervals("R3", [Interval(12, 20)])
        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
        )
        result = reference_join(q, {"R1": r1, "R2": r2, "R3": r3})
        assert result.tuple_ids() == [(0, 0, 0)]

    def test_contains_star(self):
        wind = Relation.of_intervals("W", [Interval(0, 100)])
        temp = Relation.of_intervals("T", [Interval(10, 20), Interval(200, 300)])
        poll = Relation.of_intervals("P", [Interval(30, 40)])
        q = IntervalJoinQuery.parse(
            [("W", "contains", "T"), ("W", "contains", "P")]
        )
        result = reference_join(q, {"W": wind, "T": temp, "P": poll})
        assert result.tuple_ids() == [(0, 0, 0)]

    def test_empty_when_no_match(self):
        r1 = Relation.of_intervals("R1", [Interval(0, 1)])
        r2 = Relation.of_intervals("R2", [Interval(5, 6)])
        q = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        assert len(reference_join(q, {"R1": r1, "R2": r2})) == 0

    def test_empty_relation_gives_empty_join(self):
        r1 = Relation.of_intervals("R1", [Interval(0, 10)])
        r2 = Relation("R2", [])
        q = IntervalJoinQuery.parse([("R1", "before", "R2")])
        assert len(reference_join(q, {"R1": r1, "R2": r2})) == 0

    def test_tuple_order_follows_query_relations(self):
        r1 = Relation.of_intervals("R1", [Interval(0, 5)])
        r2 = Relation.of_intervals("R2", [Interval(3, 8)])
        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2")], relations=["R2", "R1"]
        )
        result = reference_join(q, {"R1": r1, "R2": r2})
        (tup,) = result.tuples
        assert tup[0].interval("I") == Interval(3, 8)  # R2 first

    def test_cyclic_query_graph(self):
        # Triangle: R1 ov R2, R2 ov R3, R1 ov R3.
        r1 = Relation.of_intervals("R1", [Interval(0, 10)])
        r2 = Relation.of_intervals("R2", [Interval(5, 15)])
        r3 = Relation.of_intervals("R3", [Interval(8, 20), Interval(12, 30)])
        q = IntervalJoinQuery.parse(
            [
                ("R1", "overlaps", "R2"),
                ("R2", "overlaps", "R3"),
                ("R1", "overlaps", "R3"),
            ]
        )
        result = reference_join(q, {"R1": r1, "R2": r2, "R3": r3})
        # Only R3#0 overlaps R1 (12 > 10 for R3#1).
        assert result.tuple_ids() == [(0, 0, 0)]
