"""Unit tests for the reducer-local join evaluator."""


import pytest

from tests.conftest import make_dataset

from repro.core.local import LocalJoiner
from repro.core.query import IntervalJoinQuery
from repro.core.reference import reference_join
from repro.core.schema import Relation, Row
from repro.intervals.interval import Interval


QUERIES = [
    [("R1", "overlaps", "R2")],
    [("R1", "before", "R2")],
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")],
    [("R1", "before", "R2"), ("R2", "before", "R3")],
    [("R1", "before", "R2"), ("R1", "overlaps", "R3")],
    [("R1", "contains", "R2"), ("R2", "contains", "R3")],
    [
        ("R1", "overlaps", "R2"),
        ("R2", "overlaps", "R3"),
        ("R1", "before", "R3"),
    ],
]


class TestLocalJoiner:
    @pytest.mark.parametrize("conditions", QUERIES)
    def test_matches_reference(self, conditions):
        names = sorted({n for l, _, r in conditions for n in (l, r)})
        data = make_dataset(names, 40, seed=11)
        query = IntervalJoinQuery.parse(conditions)
        joiner = LocalJoiner(query)
        got = sorted(
            tuple(row.rid for row in t)
            for t in joiner.join({n: data[n].rows for n in names})
        )
        want = reference_join(query, data).tuple_ids()
        assert got == want

    def test_counts_comparisons(self):
        data = make_dataset(["R1", "R2"], 30, seed=5)
        query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        counted = []
        joiner = LocalJoiner(query, counted.append)
        list(joiner.join({n: data[n].rows for n in data}))
        assert sum(counted) > 0

    def test_accept_filter(self):
        data = make_dataset(["R1", "R2"], 30, seed=6)
        query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        joiner = LocalJoiner(query)
        all_tuples = list(joiner.join({n: data[n].rows for n in data}))
        none = list(
            joiner.join(
                {n: data[n].rows for n in data}, accept=lambda b: False
            )
        )
        assert none == []
        half = list(
            joiner.join(
                {n: data[n].rows for n in data},
                accept=lambda b: b["R1"].rid % 2 == 0,
            )
        )
        assert 0 < len(half) < len(all_tuples) or not all_tuples

    def test_empty_relation_short_circuits(self):
        query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        joiner = LocalJoiner(query)
        rows = {"R1": [], "R2": [Row.make(0, {"I": Interval(0, 1)})]}
        assert list(joiner.join(rows)) == []

    def test_missing_relation_short_circuits(self):
        query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        joiner = LocalJoiner(query)
        assert list(joiner.join({"R1": [Row.make(0, {"I": Interval(0, 1)})]})) == []

    def test_multi_attribute_conditions(self):
        r1 = Relation.of_records(
            "R1",
            [
                {"I": Interval(0, 10), "A": 1.0},
                {"I": Interval(0, 10), "A": 2.0},
            ],
        )
        r2 = Relation.of_records(
            "R2",
            [{"I": Interval(5, 15), "A": 2.0}],
        )
        query = IntervalJoinQuery.parse(
            [("R1.I", "overlaps", "R2.I"), ("R1.A", "=", "R2.A")]
        )
        joiner = LocalJoiner(query)
        got = [
            tuple(row.rid for row in t)
            for t in joiner.join({"R1": r1.rows, "R2": r2.rows})
        ]
        assert got == [(1, 0)]
