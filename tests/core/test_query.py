"""Unit tests for the query model and class detection."""

import pytest

from repro.errors import QueryError
from repro.core.query import IntervalJoinQuery, JoinCondition, QueryClass, Term


class TestTerm:
    def test_parse_bare_relation(self):
        term = Term.parse("R1")
        assert term == Term("R1", "I")

    def test_parse_qualified(self):
        assert Term.parse("R1.len") == Term("R1", "len")

    def test_parse_malformed(self):
        with pytest.raises(QueryError):
            Term.parse("a.b.c")
        with pytest.raises(QueryError):
            Term.parse("a.")


class TestJoinCondition:
    def test_parse(self):
        cond = JoinCondition.parse("R1", "overlaps", "R2")
        assert cond.predicate.name == "overlaps"
        assert cond.is_colocation

    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            JoinCondition.parse("R1", "overlaps", "R1")

    def test_as_triple(self):
        cond = JoinCondition.parse("R1", "before", "R2")
        left, pred, right = cond.as_triple()
        assert (left, pred.name, right) == ("R1", "before", "R2")


class TestQueryConstruction:
    def test_relation_order_is_first_appearance(self):
        q = IntervalJoinQuery.parse(
            [("B", "overlaps", "C"), ("A", "overlaps", "B")]
        )
        assert q.relations == ("B", "C", "A")

    def test_explicit_relation_order(self):
        q = IntervalJoinQuery.parse(
            [("B", "overlaps", "C"), ("A", "overlaps", "B")],
            relations=["A", "B", "C"],
        )
        assert q.relations == ("A", "B", "C")

    def test_explicit_order_must_cover_all(self):
        with pytest.raises(QueryError):
            IntervalJoinQuery.parse(
                [("A", "overlaps", "B")], relations=["A"]
            )

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            IntervalJoinQuery([])

    def test_disconnected_rejected(self):
        with pytest.raises(QueryError):
            IntervalJoinQuery.parse(
                [("A", "overlaps", "B"), ("C", "overlaps", "D")]
            )


class TestQueryClass:
    def test_colocation(self):
        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R2", "contains", "R3")]
        )
        assert q.query_class is QueryClass.COLOCATION

    def test_sequence(self):
        q = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R2", "before", "R3")]
        )
        assert q.query_class is QueryClass.SEQUENCE

    def test_hybrid(self):
        q = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
        )
        assert q.query_class is QueryClass.HYBRID

    def test_general_multi_attribute(self):
        q = IntervalJoinQuery.parse(
            [("R1.I", "overlaps", "R2.I"), ("R1.A", "=", "R2.A")]
        )
        assert q.query_class is QueryClass.GENERAL
        assert not q.is_single_attribute

    def test_single_attribute_with_custom_name(self):
        q = IntervalJoinQuery.parse([("R1.t", "overlaps", "R2.t")])
        assert q.is_single_attribute
        assert q.query_class is QueryClass.COLOCATION


class TestQueryIntrospection:
    def test_terms(self):
        q = IntervalJoinQuery.parse(
            [("R1.I", "overlaps", "R2.I"), ("R1.A", "=", "R2.A")]
        )
        assert set(q.terms) == {
            Term("R1", "I"),
            Term("R2", "I"),
            Term("R1", "A"),
            Term("R2", "A"),
        }

    def test_attributes_of(self):
        q = IntervalJoinQuery.parse(
            [("R1.I", "overlaps", "R2.I"), ("R1.A", "=", "R2.A")]
        )
        assert q.attributes_of("R1") == ("I", "A")

    def test_conditions_as_triples_requires_single_attribute(self):
        q = IntervalJoinQuery.parse(
            [("R1.I", "overlaps", "R2.I"), ("R1.A", "=", "R2.A")]
        )
        with pytest.raises(QueryError):
            q.conditions_as_triples()

    def test_validate_against(self):
        q = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        with pytest.raises(QueryError):
            q.validate_against({"R1": object()})
