"""Unit tests for the analysis module (histograms + profiles)."""

import random


from repro.analysis import (
    allen_histogram,
    concurrency_profile,
    peak_concurrency,
)
from repro.intervals.allen import ALLEN_PREDICATES
from repro.intervals.interval import Interval


def random_intervals(seed, n, span=50, max_len=8):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        start = rng.randint(0, span)
        out.append(Interval(start, start + rng.randint(0, max_len)))
    return out


class TestAllenHistogram:
    def test_sums_to_cross_product(self):
        left = random_intervals(1, 40)
        right = random_intervals(2, 35)
        histogram = allen_histogram(left, right)
        assert sum(histogram.values()) == 40 * 35

    def test_matches_brute_force(self):
        from repro.intervals.allen import relation_between

        left = random_intervals(3, 30)
        right = random_intervals(4, 30)
        histogram = allen_histogram(left, right)
        brute = {name: 0 for name in ALLEN_PREDICATES}
        for u in left:
            for v in right:
                brute[relation_between(u, v).name] += 1
        assert histogram == brute

    def test_empty_sides(self):
        histogram = allen_histogram([], random_intervals(5, 10))
        assert sum(histogram.values()) == 0

    def test_pure_sequence_data(self):
        left = [Interval(0, 1), Interval(2, 3)]
        right = [Interval(10, 11)]
        histogram = allen_histogram(left, right)
        assert histogram["before"] == 2
        assert sum(histogram.values()) == 2


class TestConcurrencyProfile:
    def test_simple_profile(self):
        profile = concurrency_profile([Interval(0, 2), Interval(1, 3)])
        # starts at 0 (1 active), 1 (2 active), then drops after 2 and 3.
        assert profile[0] == (0, 1)
        assert profile[1] == (1, 2)
        assert profile[-1][1] == 0

    def test_closed_endpoints_both_active(self):
        # [0,2] and [2,5] are both active at t=2.
        assert peak_concurrency([Interval(0, 2), Interval(2, 5)]) == 2

    def test_peak(self):
        intervals = [Interval(0, 10), Interval(2, 5), Interval(3, 4)]
        assert peak_concurrency(intervals) == 3

    def test_empty(self):
        assert concurrency_profile([]) == []
        assert peak_concurrency([]) == 0

    def test_profile_is_consistent_with_stabbing(self):
        intervals = random_intervals(6, 50)
        profile = concurrency_profile(intervals)
        # At each breakpoint, the count equals a direct stabbing count.
        for time, count in profile[:20]:
            stab = sum(1 for iv in intervals if iv.contains_point(time))
            assert stab == count, time
