"""Unit tests for relation serialisation and the CLI."""

import json

import pytest

from repro.errors import ReproError
from repro.cli import main
from repro.core.schema import Relation, Row
from repro.intervals.interval import Interval
from repro.io import (
    decode_row,
    encode_row,
    load_intervals_text,
    load_relation,
    parse_interval_lines,
    save_relation,
)


class TestRowCodec:
    def test_roundtrip_intervals_and_scalars(self):
        row = Row.make(7, {"I": Interval(1.5, 9.25), "A": 3.0, "tag": 2})
        assert decode_row(encode_row(row)) == row

    def test_malformed_payload(self):
        with pytest.raises(ReproError):
            decode_row({"nope": 1})

    def test_malformed_interval(self):
        with pytest.raises(ReproError):
            decode_row({"rid": 0, "values": {"I": {"begin": 0}}})


class TestRelationFiles:
    def test_save_load_roundtrip(self, tmp_path):
        relation = Relation.of_records(
            "R",
            [
                {"I": Interval(0, 5), "A": 1.0},
                {"I": Interval(3, 9), "A": 2.0},
            ],
        )
        path = str(tmp_path / "rel.jsonl")
        assert save_relation(relation, path) == 2
        loaded = load_relation(path, "R2")
        assert loaded.name == "R2"
        assert loaded.rows == relation.rows

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "rel.jsonl"
        row = Row.make(0, {"I": Interval(0, 1)})
        path.write_text(json.dumps(encode_row(row)) + "\n\n")
        assert len(load_relation(str(path), "R")) == 1

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ReproError):
            load_relation(str(path), "R")


class TestTextFormat:
    def test_parse_lines(self):
        lines = ["0 5", "3,9", "# comment", "", "7 7  # trailing"]
        assert list(parse_interval_lines(lines)) == [
            Interval(0, 5),
            Interval(3, 9),
            Interval(7, 7),
        ]

    def test_parse_rejects_bad_lines(self):
        with pytest.raises(ReproError):
            list(parse_interval_lines(["1 2 3"]))
        with pytest.raises(ReproError):
            list(parse_interval_lines(["a b"]))

    def test_load_text_file(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("0 5\n10 12\n")
        relation = load_intervals_text(str(path), "R")
        assert relation.intervals() == [Interval(0, 5), Interval(10, 12)]


class TestCli:
    def test_generate_and_run(self, tmp_path, capsys):
        r1 = str(tmp_path / "r1.jsonl")
        r2 = str(tmp_path / "r2.jsonl")
        assert main(["generate", "--n", "200", "--seed", "1", "-o", r1]) == 0
        assert main(["generate", "--n", "200", "--seed", "2", "-o", r2]) == 0
        out = str(tmp_path / "out.jsonl")
        code = main(
            [
                "run",
                "--relation", f"R1={r1}",
                "--relation", f"R2={r2}",
                "--condition", "R1 overlaps R2",
                "--partitions", "4",
                "-o", out,
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "algorithm:  two_way" in captured
        with open(out) as handle:
            records = [json.loads(line) for line in handle]
        # Cross-check against an in-process run.
        from repro import IntervalJoinQuery, execute
        from repro.io import load_relation as load

        data = {"R1": load(r1, "R1"), "R2": load(r2, "R2")}
        query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        expected = execute(query, data, num_partitions=4)
        assert len(records) == len(expected)

    def test_explain(self, tmp_path, capsys):
        r1 = str(tmp_path / "r1.jsonl")
        r2 = str(tmp_path / "r2.jsonl")
        main(["generate", "--n", "10", "--seed", "3", "-o", r1])
        main(["generate", "--n", "10", "--seed", "4", "-o", r2])
        code = main(
            [
                "run",
                "--relation", f"R1={r1}",
                "--relation", f"R2={r2}",
                "--condition", "R1 before R2",
                "--explain",
            ]
        )
        assert code == 0
        assert "SEQUENCE" in capsys.readouterr().out

    def test_run_with_text_relations(self, tmp_path, capsys):
        r1 = tmp_path / "r1.txt"
        r2 = tmp_path / "r2.txt"
        r1.write_text("0 5\n")
        r2.write_text("3 9\n")
        code = main(
            [
                "run",
                "--relation", f"A={r1}",
                "--relation", f"B={r2}",
                "--condition", "A overlaps B",
            ]
        )
        assert code == 0
        assert "tuples:     1" in capsys.readouterr().out

    def test_histogram_command(self, tmp_path, capsys):
        r1 = tmp_path / "r1.txt"
        r2 = tmp_path / "r2.txt"
        r1.write_text("0 2\n")
        r2.write_text("5 9\n1 4\n")
        assert main(["histogram", str(r1), str(r2)]) == 0
        out = capsys.readouterr().out
        assert "before" in out
        assert "total" in out

    def test_trace_command(self, tmp_path, capsys):
        out = str(tmp_path / "trains.jsonl")
        code = main(
            ["trace", "--profile", "P04", "--target", "300",
             "--seed", "1", "-o", out]
        )
        assert code == 0
        assert len(load_relation(out, "T")) == 300

    def test_bad_condition_reports_error(self, tmp_path, capsys):
        r1 = tmp_path / "r1.txt"
        r1.write_text("0 1\n")
        code = main(
            [
                "run",
                "--relation", f"A={r1}",
                "--relation", f"B={r1}",
                "--condition", "A overlaps",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_reports_error(self, capsys):
        code = main(
            [
                "run",
                "--relation", "A=/nonexistent/file.jsonl",
                "--relation", "B=/nonexistent/file.jsonl",
                "--condition", "A overlaps B",
            ]
        )
        assert code == 1
