"""Edge-case tests across the algorithm suite."""

import pytest

from tests.conftest import assert_matches_reference, make_dataset

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.core.schema import Relation, Row
from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning


class TestEmptyRelations:
    @pytest.mark.parametrize(
        "algorithm",
        ["rccis", "all_replicate", "two_way_cascade", "all_seq_matrix"],
    )
    def test_one_empty_relation_gives_empty_output(self, algorithm):
        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
        )
        data = make_dataset(["R1", "R2"], 10, seed=1)
        data["R3"] = Relation("R3", [])
        result = execute(q, data, algorithm=algorithm, num_partitions=3)
        assert len(result) == 0

    def test_all_empty(self):
        q = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        data = {"R1": Relation("R1", []), "R2": Relation("R2", [])}
        result = execute(q, data, num_partitions=3)
        assert len(result) == 0


class TestDegenerateData:
    @pytest.mark.parametrize("algorithm", ["rccis", "all_replicate"])
    def test_all_identical_intervals(self, algorithm):
        q = IntervalJoinQuery.parse(
            [("R1", "equals", "R2"), ("R2", "equals", "R3")]
        )
        data = {
            name: Relation.of_intervals(name, [Interval(5, 10)] * 4)
            for name in ("R1", "R2", "R3")
        }
        result = execute(q, data, algorithm=algorithm, num_partitions=3)
        assert len(result) == 64  # 4^3 combinations
        assert_matches_reference(q, data, result)

    @pytest.mark.parametrize("algorithm", ["rccis", "all_seq_matrix"])
    def test_single_row_relations(self, algorithm):
        q = IntervalJoinQuery.parse(
            [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
        )
        data = {
            "R1": Relation.of_intervals("R1", [Interval(0, 10)]),
            "R2": Relation.of_intervals("R2", [Interval(5, 15)]),
            "R3": Relation.of_intervals("R3", [Interval(12, 20)]),
        }
        result = execute(q, data, algorithm=algorithm, num_partitions=4)
        assert result.tuple_ids() == [(0, 0, 0)]

    def test_intervals_spanning_whole_range(self):
        # One interval covers everything: split hits every partition.
        q = IntervalJoinQuery.parse(
            [("R1", "contains", "R2"), ("R1", "contains", "R3")]
        )
        data = {
            "R1": Relation.of_intervals("R1", [Interval(0, 1000)]),
            "R2": Relation.of_intervals(
                "R2", [Interval(100, 150), Interval(800, 900)]
            ),
            "R3": Relation.of_intervals("R3", [Interval(400, 450)]),
        }
        result = execute(q, data, algorithm="rccis", num_partitions=8)
        assert_matches_reference(q, data, result)
        assert len(result) == 2

    @pytest.mark.parametrize(
        "algorithm", ["rccis", "all_replicate", "two_way_cascade"]
    )
    def test_point_interval_mixture(self, algorithm):
        import random

        rng = random.Random(5)
        q = IntervalJoinQuery.parse(
            [("R1", "during", "R2"), ("R2", "overlaps", "R3")]
        )
        data = {}
        for name in ("R1", "R2", "R3"):
            intervals = []
            for _ in range(20):
                start = rng.randint(0, 30)
                length = rng.choice([0, 0, rng.randint(1, 10)])
                intervals.append(Interval(start, start + length))
            data[name] = Relation.of_intervals(name, intervals)
        result = execute(q, data, algorithm=algorithm, num_partitions=4)
        assert_matches_reference(q, data, result)


class TestExplicitPartitioning:
    def test_supplied_partitioning_used(self):
        q = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        data = make_dataset(["R1", "R2"], 25, seed=2, span=100)
        parts = Partitioning.uniform(-50, 250, 5)
        result = execute(
            q, data, algorithm="two_way", partitioning=parts
        )
        assert_matches_reference(q, data, result)

    def test_partitioning_narrower_than_data(self):
        # Out-of-range intervals clamp to the edge partitions.
        q = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
        data = make_dataset(["R1", "R2"], 25, seed=3, span=200)
        parts = Partitioning.uniform(50, 150, 4)
        result = execute(
            q, data, algorithm="two_way", partitioning=parts
        )
        assert_matches_reference(q, data, result)


class TestGenMatrixEdgeCases:
    def test_degenerate_component_two_attrs_one_relation(self):
        # R1.A ov R2.I and R2.I ov R1.B puts (R1,A), (R2,I), (R1,B) in a
        # single component with R1 appearing twice -> the conservative
        # flag-everything path.
        q = IntervalJoinQuery.parse(
            [("R1.A", "overlaps", "R2.I"), ("R2.I", "overlaps", "R1.B")]
        )
        import random

        rng = random.Random(9)
        rows1 = []
        for rid in range(15):
            a_start = rng.uniform(0, 60)
            b_start = rng.uniform(0, 60)
            rows1.append(
                Row.make(
                    rid,
                    {
                        "A": Interval(a_start, a_start + rng.uniform(1, 15)),
                        "B": Interval(b_start, b_start + rng.uniform(1, 15)),
                    },
                )
            )
        rows2 = []
        for rid in range(15):
            start = rng.uniform(0, 60)
            rows2.append(
                Row.make(rid, {"I": Interval(start, start + rng.uniform(1, 15))})
            )
        data = {"R1": Relation("R1", rows1), "R2": Relation("R2", rows2)}
        result = execute(q, data, algorithm="gen_matrix", num_partitions=3)
        assert_matches_reference(q, data, result)

    def test_relation_with_attrs_in_two_components(self):
        # R3 joins through I (colocation with R1) and A (equality with
        # R2): constraints on two grid dimensions simultaneously.
        q = IntervalJoinQuery.parse(
            [("R1.I", "overlaps", "R3.I"), ("R2.A", "=", "R3.A")]
        )
        import random

        rng = random.Random(10)

        def rel(name, attrs, n=15):
            rows = []
            for rid in range(n):
                values = {}
                for attr in attrs:
                    if attr == "I":
                        s = rng.uniform(0, 50)
                        values["I"] = Interval(s, s + rng.uniform(1, 10))
                    else:
                        values[attr] = float(rng.randint(0, 3))
                rows.append(Row.make(rid, values))
            return Relation(name, rows)

        data = {
            "R1": rel("R1", ["I"]),
            "R2": rel("R2", ["A"]),
            "R3": rel("R3", ["I", "A"]),
        }
        result = execute(q, data, algorithm="gen_matrix", num_partitions=3)
        assert_matches_reference(q, data, result)


class TestSelfJoinAliases:
    @pytest.mark.parametrize("algorithm", ["rccis", "all_matrix"])
    def test_star_self_join(self, algorithm):
        base = make_dataset(["T"], 25, seed=6)["T"]
        data = {
            "T1": base.alias("T1"),
            "T2": base.alias("T2"),
            "T3": base.alias("T3"),
        }
        predicate = "overlaps" if algorithm == "rccis" else "before"
        q = IntervalJoinQuery.parse(
            [("T1", predicate, "T2"), ("T2", predicate, "T3")]
        )
        result = execute(q, data, algorithm=algorithm, num_partitions=4)
        assert_matches_reference(q, data, result)


class TestThreadedExecutors:
    @pytest.mark.parametrize(
        "algorithm", ["all_seq_matrix", "gen_matrix", "two_way_cascade"]
    )
    def test_threads_match_serial(self, algorithm):
        q = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
        )
        data = make_dataset(["R1", "R2", "R3"], 25, seed=7)
        serial = execute(q, data, algorithm=algorithm, num_partitions=4)
        threaded = execute(
            q, data, algorithm=algorithm, num_partitions=4,
            executor="threads",
        )
        assert serial.same_output(threaded)
