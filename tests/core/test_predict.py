"""Exact-tier predictions must equal observed metrics, bit for bit.

The exact prediction tier (``PredictConfig(exact=True, data=...)``)
dry-runs the real mappers and a decision-only reduce pass, so every
count it returns — records read, map output, shuffled records,
replication factor, max reducer load, cycle count — must match what an
actual run observes *exactly*, for all ten algorithms, on any workload.
These are the property tests behind the ``repro explain --exact``
contract; the analytic tier's (approximate) errors are pinned separately
by ``benchmarks/check_model_error.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import execute
from repro.core.planner import ALGORITHMS
from repro.core.query import IntervalJoinQuery
from repro.core.tuning import PredictConfig, profile_data
from repro.workloads import SyntheticConfig, generate_relation

#: One pinned query per algorithm, on a class it handles.
QUERIES = {
    "two_way": (("R1", "overlaps", "R2"),),
    "two_way_cascade": (("R1", "overlaps", "R2"), ("R2", "before", "R3")),
    "all_replicate": (("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")),
    "rccis": (("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")),
    "all_matrix": (("R1", "before", "R2"), ("R2", "before", "R3")),
    "all_seq_matrix": (("R1", "overlaps", "R2"), ("R2", "before", "R3")),
    "pasm": (("R1", "overlaps", "R2"), ("R2", "before", "R3")),
    "gen_matrix": (("R1", "overlaps", "R2"), ("R2", "before", "R3")),
    "fcts": (("R1", "overlaps", "R2"), ("R2", "before", "R3")),
    "fstc": (("R1", "overlaps", "R2"), ("R2", "before", "R3")),
}

#: Quantities the exact tier reproduces bit-for-bit.  ``modelled_seconds``
#: is excluded: the dry run charges no per-phase queueing, so it tracks
#: but does not equal the simulated clock.
EXACT_QUANTITIES = (
    "records_read",
    "map_output_records",
    "shuffled_records",
    "replication_factor",
    "max_reducer_load",
    "num_cycles",
)


def _workload(algorithm: str, n: int, seed: int):
    query = IntervalJoinQuery.parse(list(QUERIES[algorithm]))
    data = {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=n,
                t_range=(0, 10_000),
                length_range=(1, 400),
                seed=seed + index,
            ),
        )
        for index, name in enumerate(query.relations)
    }
    return query, data


def _predict_and_observe(algorithm: str, n: int, seed: int, parts: int):
    query, data = _workload(algorithm, n, seed)
    prediction = ALGORITHMS[algorithm]().predict(
        query,
        profile_data(query, data),
        PredictConfig(num_partitions=parts, exact=True, data=data),
    )
    result = execute(
        query,
        data,
        algorithm=algorithm,
        num_partitions=parts,
        executor="serial",
    )
    return prediction, result.metrics.observed_quantities()


@pytest.mark.parametrize("algorithm", sorted(QUERIES))
def test_exact_prediction_matches_observation(algorithm):
    prediction, observed = _predict_and_observe(algorithm, 60, 0, 8)
    assert prediction.tier == "exact"
    predicted = prediction.quantities()
    for quantity in EXACT_QUANTITIES:
        assert predicted[quantity] == observed[quantity], (
            f"{algorithm}.{quantity}: predicted {predicted[quantity]} "
            f"!= observed {observed[quantity]}"
        )


@pytest.mark.parametrize("algorithm", sorted(QUERIES))
@settings(max_examples=4, deadline=None)
@given(
    n=st.integers(min_value=12, max_value=48),
    seed=st.integers(min_value=0, max_value=40),
    parts=st.sampled_from([2, 4, 8]),
)
def test_exact_prediction_matches_observation_property(
    algorithm, n, seed, parts
):
    prediction, observed = _predict_and_observe(algorithm, n, seed, parts)
    predicted = prediction.quantities()
    for quantity in EXACT_QUANTITIES:
        assert predicted[quantity] == observed[quantity], (
            f"{algorithm}.{quantity} on n={n} seed={seed} parts={parts}"
        )
