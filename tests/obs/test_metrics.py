"""MetricsRegistry: types, merge semantics, exposition goldens.

The golden files pin the full Prometheus text exposition of a small
RCCIS run and a small All-Matrix run (deterministic ``run`` + ``faults``
groups only — wall-clock families are excluded by construction).  When
an intentional change shifts the numbers, regenerate with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src:. python -m pytest \
        tests/obs/test_metrics.py -q
"""

from __future__ import annotations

import os

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.obs import MetricError, MetricsRegistry, TraceRecorder
from repro.obs.metrics import GROUP_WALL, LOAD_BUCKETS

from tests.conftest import make_dataset

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", labels=("job",))
        counter.inc(job="a")
        counter.inc(2, job="a")
        counter.inc(5, job="b")
        assert counter.value(job="a") == 3
        assert counter.value(job="b") == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_label_mismatch_rejected(self):
        counter = MetricsRegistry().counter("c_total", labels=("job",))
        with pytest.raises(MetricError):
            counter.inc(task="x")


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g", labels=("k",))
        gauge.set(1.5, k="x")
        gauge.set(2.5, k="x")
        assert gauge.value(k="x") == 2.5
        assert gauge.value(k="missing") is None


class TestHistogram:
    def test_bucketing_and_quantiles(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0, 10.0, 100.0)
        )
        for value in (0.5, 5, 5, 50, 500):
            histogram.observe(value)
        state = histogram.state()
        assert state["counts"] == [1, 2, 1, 1]
        assert state["count"] == 5
        assert histogram.quantile(0.5) == 10.0

    def test_registration_signature_checked(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        registry.histogram("h", buckets=(1.0, 2.0))  # idempotent
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(MetricError):
            registry.counter("h")

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestMergeAndSerialisation:
    def _populated(self, scale=1):
        registry = MetricsRegistry()
        registry.counter("records_total", "r", labels=("job",)).inc(
            10 * scale, job="j"
        )
        registry.gauge("factor", "f").set(1.5 * scale)
        histogram = registry.histogram("load", "l", buckets=LOAD_BUCKETS)
        for value in range(scale * 3):
            histogram.observe(value)
        return registry

    def test_roundtrip(self):
        registry = self._populated(2)
        clone = MetricsRegistry.from_dict(registry.as_dict())
        assert clone.fingerprint() == registry.fingerprint()
        assert clone.to_prometheus() == registry.to_prometheus()

    def test_merge_adds_counters_and_histograms(self):
        merged = self._populated(1)
        merged.merge(self._populated(2))
        assert merged.get("records_total").value(job="j") == 30
        # Gauges are last-write-wins.
        assert merged.get("factor").value() == 3.0
        assert merged.get("load").state()["count"] == 3 + 6

    def test_merge_is_deterministic(self):
        a = self._populated(1)
        a.merge(self._populated(3))
        b = self._populated(3)
        # Merging in either order gives identical counters/histograms
        # (gauges differ by design: last write wins).
        b.merge(self._populated(1))
        assert (
            a.get("records_total").samples()
            == b.get("records_total").samples()
        )
        assert a.get("load").samples() == b.get("load").samples()

    def test_fingerprint_excludes_groups(self):
        registry = self._populated()
        registry.counter("wall_thing", group=GROUP_WALL).inc(123)
        assert "wall_thing" not in registry.fingerprint()
        assert "wall_thing" in registry.fingerprint(exclude_groups=())

    def test_summary_mentions_every_family(self):
        text = self._populated().summary()
        for family in ("records_total", "factor", "load"):
            assert family in text


# ---------------------------------------------------------------- goldens
RCCIS = (
    "rccis",
    IntervalJoinQuery.parse(
        [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
    ),
    ("R1", "R2", "R3"),
)
ALL_MATRIX = (
    "all_matrix",
    IntervalJoinQuery.parse(
        [("R1", "before", "R2"), ("R2", "before", "R3")]
    ),
    ("R1", "R2", "R3"),
)


def _deterministic_exposition(algorithm, query, relations) -> str:
    recorder = TraceRecorder()
    execute(
        query,
        make_dataset(relations, 40, seed=11),
        algorithm=algorithm,
        num_partitions=4,
        observer=recorder,
    )
    payload = {
        name: entry
        for name, entry in recorder.metrics.as_dict().items()
        if entry["group"] != GROUP_WALL
    }
    return MetricsRegistry.from_dict(payload).to_prometheus()


@pytest.mark.parametrize(
    "case", [RCCIS, ALL_MATRIX], ids=[RCCIS[0], ALL_MATRIX[0]]
)
def test_prometheus_exposition_golden(case):
    algorithm, query, relations = case
    exposition = _deterministic_exposition(algorithm, query, relations)
    path = os.path.join(GOLDEN_DIR, f"{algorithm}_metrics.prom")
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(exposition)
    with open(path, "r", encoding="utf-8") as handle:
        assert exposition == handle.read()
