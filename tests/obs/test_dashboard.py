"""HTML dashboard: structural validity and content smoke tests."""

from __future__ import annotations

from html.parser import HTMLParser

import pytest

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.obs import (
    JsonlSink,
    TraceRecorder,
    dashboard_from_recorder,
    load_spans_jsonl,
    render_dashboard,
)

from tests.conftest import make_dataset

COLOCATION = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
SEQUENCE = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)
HYBRID = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
)

#: All ten algorithms — the dashboard must render a replication factor
#: for every one of them (acceptance criteria).
ALL_CASES = [
    ("two_way", IntervalJoinQuery.parse([("R1", "overlaps", "R2")]),
     ("R1", "R2")),
    ("rccis", COLOCATION, ("R1", "R2", "R3")),
    ("all_replicate", SEQUENCE, ("R1", "R2", "R3")),
    ("all_matrix", SEQUENCE, ("R1", "R2", "R3")),
    ("two_way_cascade", SEQUENCE, ("R1", "R2", "R3")),
    ("all_seq_matrix", HYBRID, ("R1", "R2", "R3")),
    ("pasm", HYBRID, ("R1", "R2", "R3")),
    ("gen_matrix", HYBRID, ("R1", "R2", "R3")),
    ("fcts", HYBRID, ("R1", "R2", "R3")),
    ("fstc", HYBRID, ("R1", "R2", "R3")),
]


class _StrictParser(HTMLParser):
    """Counts tags; html.parser is lenient, so also track balance of the
    structural tags the dashboard emits."""

    TRACKED = {"html", "body", "table", "svg", "div"}

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.depth = {tag: 0 for tag in self.TRACKED}
        self.seen = set()

    def handle_starttag(self, tag, attrs):
        self.seen.add(tag)
        if tag in self.TRACKED:
            self.depth[tag] += 1

    def handle_endtag(self, tag):
        if tag in self.TRACKED:
            self.depth[tag] -= 1
            assert self.depth[tag] >= 0, f"unbalanced </{tag}>"


def _parse(page: str) -> _StrictParser:
    parser = _StrictParser()
    parser.feed(page)
    parser.close()
    assert all(depth == 0 for depth in parser.depth.values()), parser.depth
    return parser


def _observed_run(algorithm, query, relations):
    recorder = TraceRecorder()
    execute(
        query,
        make_dataset(relations, 40, seed=11),
        algorithm=algorithm,
        num_partitions=4,
        observer=recorder,
    )
    return recorder


@pytest.mark.parametrize(
    "algorithm,query,relations",
    [("rccis", COLOCATION, ("R1", "R2", "R3")),
     ("all_matrix", SEQUENCE, ("R1", "R2", "R3"))],
    ids=["rccis", "all_matrix"],
)
def test_dashboard_smoke(algorithm, query, relations):
    recorder = _observed_run(algorithm, query, relations)
    page = dashboard_from_recorder(recorder, title=f"run {algorithm}")
    parser = _parse(page)
    assert page.startswith("<!DOCTYPE html>")
    assert "svg" in parser.seen and "table" in parser.seen
    # Self-contained: no external fetches of any kind.
    for banned in ("http://", "https://", "<script", "<link", "@import"):
        assert banned not in page
    # Every phase name, every executed job, and the headline sections.
    for needle in ("map", "shuffle", "reduce", "Per-phase timeline",
                   "Per-reducer load", "Skew", "Replication factor",
                   "Gini", "Jain"):
        assert needle in page, needle
    for job_result in recorder.job_results:
        assert job_result.name in page
    # The metrics-backed tables made it in.
    assert algorithm in page
    if algorithm == "all_matrix":
        assert "Grid reducer utilisation" in page


@pytest.mark.parametrize(
    "algorithm,query,relations", ALL_CASES,
    ids=[case[0] for case in ALL_CASES],
)
def test_dashboard_replication_for_every_algorithm(
    algorithm, query, relations
):
    recorder = _observed_run(algorithm, query, relations)
    page = dashboard_from_recorder(recorder)
    _parse(page)
    assert "Replication factor per algorithm" in page
    assert f"<td>{algorithm}</td>" in page


def test_dashboard_from_reloaded_trace(tmp_path):
    """The CLI path: spans round-trip through JSONL, metrics through
    as_dict, and the rebuilt dashboard keeps the same jobs/sections."""
    trace = tmp_path / "trace.jsonl"
    recorder = TraceRecorder(JsonlSink(str(trace)))
    execute(
        COLOCATION,
        make_dataset(("R1", "R2", "R3"), 40, seed=11),
        algorithm="rccis",
        num_partitions=4,
        observer=recorder,
    )
    recorder.close()
    spans = load_spans_jsonl(str(trace))
    page = render_dashboard(spans, recorder.metrics.as_dict())
    _parse(page)
    for needle in ("rccis-flag", "rccis-join", "Per-phase timeline",
                   "Replication factor per algorithm"):
        assert needle in page


def test_dashboard_renders_without_spans_or_metrics():
    page = render_dashboard([], None, title="empty")
    _parse(page)
    assert "no job spans recorded" in page
