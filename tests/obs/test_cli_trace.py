"""CLI observability artifacts: ``repro run --trace/--history/--report``.

The trace test validates the emitted file against the Chrome trace-event
schema (the subset Perfetto/``chrome://tracing`` require): a JSON object
with a ``traceEvents`` array whose complete events carry ``name``,
``cat``, ``ph == "X"``, numeric non-negative ``ts``/``dur`` and integer
``pid``/``tid``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io import save_relation
from repro.mapreduce.history import JobHistory
from repro.workloads import SyntheticConfig, generate_relation


@pytest.fixture
def quickstart_files(tmp_path):
    """The quickstart query's relations, saved as CLI input files."""
    paths = {}
    for seed, name in enumerate(("R1", "R2", "R3"), start=1):
        relation = generate_relation(
            name,
            SyntheticConfig(
                n=120,
                start_dist="uniform",
                length_dist="uniform",
                t_range=(0, 5_000),
                length_range=(1, 100),
                seed=seed,
            ),
        )
        path = tmp_path / f"{name.lower()}.jsonl"
        save_relation(relation, str(path))
        paths[name] = str(path)
    return paths


def _run_args(quickstart_files):
    return [
        "run",
        "--relation", f"R1={quickstart_files['R1']}",
        "--relation", f"R2={quickstart_files['R2']}",
        "--relation", f"R3={quickstart_files['R3']}",
        "--condition", "R1 overlaps R2",
        "--condition", "R2 overlaps R3",
        "--partitions", "8",
    ]


def assert_valid_trace_events(payload) -> None:
    """Validate the Chrome trace-event JSON schema subset we emit."""
    assert isinstance(payload, dict)
    events = payload["traceEvents"]
    assert isinstance(events, list) and events
    complete = [event for event in events if event.get("ph") == "X"]
    assert complete, "at least one complete event"
    for event in complete:
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["cat"], str)
        assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
        assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert isinstance(event.get("args", {}), dict)


class TestTraceArtifact:
    def test_chrome_trace_on_quickstart_query(self, quickstart_files, tmp_path):
        trace = tmp_path / "run.trace.json"
        exit_code = main(_run_args(quickstart_files) + ["--trace", str(trace)])
        assert exit_code == 0
        payload = json.loads(trace.read_text())
        assert_valid_trace_events(payload)
        categories = {
            event["cat"]
            for event in payload["traceEvents"]
            if event.get("ph") == "X"
        }
        # the full span hierarchy made it into the artifact.
        assert {"query", "algorithm", "job", "phase", "task"} <= categories
        # rccis (the planner's choice for a colocation chain) runs two
        # cycles: both job spans are present.
        jobs = {
            event["name"]
            for event in payload["traceEvents"]
            if event.get("cat") == "job"
        }
        assert jobs == {"job:rccis-flag", "job:rccis-join"}

    def test_jsonl_trace(self, quickstart_files, tmp_path):
        trace = tmp_path / "run.jsonl"
        exit_code = main(
            _run_args(quickstart_files)
            + ["--trace", str(trace), "--trace-format", "jsonl"]
        )
        assert exit_code == 0
        entries = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert entries
        kinds = {entry["kind"] for entry in entries}
        assert {"query", "algorithm", "job", "phase", "task"} <= kinds
        by_id = {entry["id"]: entry for entry in entries}
        for entry in entries:
            if entry["parent"] is not None:
                assert entry["parent"] in by_id


class TestHistoryAndReport:
    def test_history_saved_and_totals_printed(
        self, quickstart_files, tmp_path, capsys
    ):
        history_path = tmp_path / "history.json"
        exit_code = main(
            _run_args(quickstart_files) + ["--history", str(history_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "totals:" in out and "jobs=2" in out
        history = JobHistory.load(str(history_path))
        assert [record.name for record in history] == [
            "rccis-flag",
            "rccis-join",
        ]
        # the new per-task columns are persisted.
        assert all(
            len(record.reduce_task_outputs) == len(record.reduce_task_loads)
            for record in history
        )
        assert history.totals()["jobs"] == 2

    def test_report_printed(self, quickstart_files, capsys):
        exit_code = main(_run_args(quickstart_files) + ["--report"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "run report" in out
        assert "job rccis-flag:" in out
        assert "job rccis-join:" in out


class TestReportDegradation:
    """``repro report`` renders whatever a damaged or partial trace
    still contains instead of failing — a live run's trace file may be
    cut off mid-write (truncated record) or may predate the plan span
    entirely (e.g. a bare ``run_job`` observed with live telemetry)."""

    def _trace(self, quickstart_files, tmp_path):
        trace = tmp_path / "run.jsonl"
        exit_code = main(
            _run_args(quickstart_files)
            + ["--trace", str(trace), "--trace-format", "jsonl"]
        )
        assert exit_code == 0
        return trace

    def test_truncated_trace_warns_and_renders(
        self, quickstart_files, tmp_path, capsys
    ):
        trace = self._trace(quickstart_files, tmp_path)
        text = trace.read_text()
        # Chop the file mid-record, as a crashed run would leave it.
        trace.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2])
        html = tmp_path / "report.html"
        exit_code = main(["report", str(trace), "--html", str(html)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "unparsable JSON" in captured.err
        assert "spans:" in captured.out
        assert html.exists()
        assert "rccis" in html.read_text()

    def test_live_spans_without_plan_span(self, tmp_path, capsys):
        """A trace from a live-monitored bare job has task spans but no
        plan span: reconciliation is skipped, the report still prints."""
        from repro.mapreduce.fs import InMemoryFileSystem
        from repro.mapreduce.job import InputSpec, JobConf
        from repro.mapreduce.runner import run_job
        from repro.mapreduce.task import IdentityMapper, Reducer
        from repro.obs import JsonlSink, LiveConfig, TraceRecorder

        class CountReducer(Reducer):
            def reduce(self, key, values, context):
                context.emit((key, len(values)))

        fs = InMemoryFileSystem()
        fs.write("in/doc", ["a", "b", "c"])
        trace = tmp_path / "live.jsonl"
        recorder = TraceRecorder(
            JsonlSink(str(trace)), live=LiveConfig()
        )
        run_job(
            fs,
            JobConf(
                name="bare",
                inputs=[InputSpec("in/doc", IdentityMapper())],
                reducer=CountReducer(),
                output="out",
                num_reduce_tasks=2,
            ),
            observer=recorder,
        )
        recorder.close()

        html = tmp_path / "report.html"
        exit_code = main(["report", str(trace), "--html", str(html)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "no plan spans in trace; reconciliation skipped" in (
            captured.out
        )
        assert "1 jobs" in captured.out
        assert html.exists()
