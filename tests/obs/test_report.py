"""RunReport: skew, straggler and empty-task diagnosis."""

from __future__ import annotations

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.faults import CRASH, DELAY, FaultEvent, ScriptedFaultPlan
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobResult
from repro.obs import RunReport, TraceRecorder
from repro.obs.span import Span
from repro.workloads import SyntheticConfig, generate_relation

from tests.conftest import make_dataset


def _job_result(
    name, loads, outputs=None, comparisons=None, logical=None,
    counters=None,
) -> JobResult:
    return JobResult(
        name=name,
        counters=counters or Counters(),
        reduce_task_loads=list(loads),
        logical_reducer_loads=dict(logical or {}),
        output=f"{name}/out",
        output_records=sum(outputs or []),
        reduce_task_outputs=list(outputs or []),
        reduce_task_comparisons=list(comparisons or []),
    )


class TestLoadFlags:
    def test_balanced_job_not_flagged(self):
        report = RunReport.from_observations(
            [_job_result("even", [10, 11, 9, 10], outputs=[1, 1, 1, 1])]
        )
        assert report.skewed_jobs == []
        assert report.flags_for(reason="skew") == []

    def test_hot_reducer_flagged(self):
        report = RunReport.from_observations(
            [_job_result("hot", [5, 5, 5, 85], outputs=[1, 1, 1, 1])]
        )
        assert [j.name for j in report.skewed_jobs] == ["hot"]
        (flag,) = report.flags_for(reason="skew")
        assert flag.task_index == 3
        assert flag.load == 85
        assert "skew" in report.render()

    def test_empty_output_tasks_flagged(self):
        report = RunReport.from_observations(
            [_job_result("e", [10, 10], outputs=[5, 0])]
        )
        (flag,) = report.flags_for(reason="empty-output")
        assert flag.task_index == 1

    def test_single_task_job_never_skewed(self):
        report = RunReport.from_observations(
            [_job_result("solo", [100], outputs=[3])]
        )
        assert report.skewed_jobs == []


class TestStragglerFlags:
    def _task_span(self, sid, job, index, start, end) -> Span:
        return Span(
            name=f"reduce[{index}]",
            kind="task",
            span_id=sid,
            parent_id=None,
            start=start,
            end=end,
            attributes={"phase": "reduce", "job": job, "task_index": index},
        )

    def test_slow_task_flagged(self):
        spans = [
            self._task_span(1, "j", 0, 0.0, 0.010),
            self._task_span(2, "j", 1, 0.0, 0.011),
            self._task_span(3, "j", 2, 0.0, 0.100),
        ]
        report = RunReport.from_observations([], spans, straggler_factor=3.0)
        (flag,) = report.flags_for(reason="straggler")
        assert flag.task_index == 2

    def test_uniform_tasks_not_flagged(self):
        spans = [
            self._task_span(i, "j", i, 0.0, 0.010 + i * 0.001)
            for i in range(4)
        ]
        report = RunReport.from_observations([], spans)
        assert report.flags_for(reason="straggler") == []

    def test_attempt_spans_excluded(self):
        """A slow *failed* attempt must never be flagged as a straggler
        — only committed ``kind="task"`` spans enter the calculation."""
        spans = [
            self._task_span(i, "j", i, 0.0, 0.010 + i * 0.001)
            for i in range(4)
        ]
        slow_attempt = Span(
            name="reduce[0]",
            kind="attempt",
            span_id=99,
            parent_id=None,
            start=0.0,
            end=5.0,
            attributes={"phase": "reduce", "job": "j", "task_index": 0},
        )
        report = RunReport.from_observations([], spans + [slow_attempt])
        assert report.flags_for(reason="straggler") == []
        assert report.faults.attempt_spans == 1
        assert report.faults.overhead_seconds >= 5.0


class TestScriptedFaultStragglers:
    """Regression: under fault injection the non-committing attempt
    spans carry the retry/delay history; straggler detection must diagnose
    the committed tasks only, identically to a fault-free run."""

    QUERY = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])

    def _run(self, faults):
        recorder = TraceRecorder()
        execute(
            self.QUERY,
            make_dataset(("R1", "R2"), 60, seed=11),
            algorithm="two_way",
            num_partitions=5,
            executor="threads",
            workers=2,
            observer=recorder,
            faults=faults,
            max_attempts=3 if faults else 1,
        )
        return recorder

    def test_slow_failed_attempt_not_a_straggler(self):
        # Attempt 0 of reduce task 0 sleeps ~50 ms (the sleep cap) and
        # then crashes at commit; attempt 1 wins normally.  The failed
        # attempt dwarfs every real task, so counting it would both
        # skew the median and flag a phantom straggler.
        plan = ScriptedFaultPlan(
            {
                ("two-way", "reduce", 0, 0): (
                    FaultEvent(DELAY, "setup", 0.2),
                    FaultEvent(CRASH, "commit"),
                )
            }
        )
        chaos = self._run(plan)
        attempt_spans = [s for s in chaos.spans if s.kind == "attempt"]
        assert len(attempt_spans) == 1
        report = RunReport.from_recorder(chaos)
        flagged = {
            (flag.job, flag.task_index)
            for flag in report.flags_for(reason="straggler")
        }
        assert ("two-way", 0) not in flagged
        # The overhead is visible where it belongs: the fault summary.
        assert report.faults.attempt_spans == 1
        assert report.faults.overhead_seconds >= 0.04
        # And a baseline run flags exactly the same stragglers.  The
        # baseline is its own threads-executor run whose ms-scale task
        # timings can flag a phantom straggler under host load, so allow
        # a couple of fresh baselines before declaring a mismatch.
        for _ in range(3):
            baseline = RunReport.from_recorder(self._run(False))
            baseline_flagged = {
                (flag.job, flag.task_index)
                for flag in baseline.flags_for(reason="straggler")
            }
            if flagged == baseline_flagged:
                break
        assert flagged == baseline_flagged


class TestProfilerExtensions:
    def test_hot_keys_ranked_and_bounded(self):
        result = _job_result(
            "h", [10, 5], logical={"a": 7, "b": 7, "c": 1, "d": 3}
        )
        report = RunReport.from_observations([result], top_keys=3)
        (job,) = report.jobs
        # Ties break on repr(key) so the ranking is deterministic.
        assert job.hot_keys == [("'a'", 7), ("'b'", 7), ("'d'", 3)]
        assert "hottest keys" in report.render()

    def test_replication_factor_from_counters(self):
        counters = Counters()
        counters.increment("framework", "map_input_records", 100)
        counters.increment("framework", "map_output_records", 250)
        report = RunReport.from_observations(
            [_job_result("r", [5], counters=counters)]
        )
        assert report.replication_factors == {"r": 2.5}

    def test_check_replication_flags_drift(self):
        counters = Counters()
        counters.increment("framework", "map_input_records", 100)
        counters.increment("framework", "map_output_records", 250)
        report = RunReport.from_observations(
            [_job_result("r", [5], counters=counters)]
        )
        assert report.check_replication({"r": 2.5}) == []
        assert report.check_replication({"r": 2.45}, tolerance=0.05) == []
        (flag,) = report.check_replication({"r": 3.5})
        assert "replication regression" in flag and "r" in flag
        # Jobs absent from the run or the baseline are not regressions.
        assert report.check_replication({"other": 9.0}) == []


class TestSkewedWorkload:
    """The Figure-4 acceptance scenario: All-Replicate on a sequence
    join piles the load onto the right-most reducer; the report must
    flag it."""

    def _zipf_data(self):
        # R2 (the projected side of ``R1 before R2``) is zipf-skewed:
        # its start points pile into the first partition, which becomes
        # the hot reducer; R1 is replicated everywhere and only raises
        # the floor.
        return {
            "R1": generate_relation(
                "R1",
                SyntheticConfig(
                    n=100,
                    start_dist="uniform",
                    t_range=(0, 1_000),
                    length_range=(1, 100),
                    seed=0,
                ),
            ),
            "R2": generate_relation(
                "R2",
                SyntheticConfig(
                    n=600,
                    start_dist="zipf",
                    t_range=(0, 1_000),
                    length_range=(1, 100),
                    seed=1,
                ),
            ),
        }

    def test_all_replicate_hot_reducer_flagged(self):
        query = IntervalJoinQuery.parse([("R1", "before", "R2")])
        recorder = TraceRecorder()
        result = execute(
            query,
            self._zipf_data(),
            algorithm="all_replicate",
            num_partitions=6,
            observer=recorder,
        )
        assert len(result) > 0
        report = RunReport.from_recorder(recorder)
        assert [j.name for j in report.skewed_jobs] == ["all-replicate"]
        skew_flags = report.flags_for(reason="skew", job="all-replicate")
        assert skew_flags, "hot reducer must be flagged"
        # The flagged task is the one the job measured as hottest —
        # the right-most partition that receives every R1 replica.
        (job_result,) = recorder.job_results
        hottest = max(
            range(len(job_result.reduce_task_loads)),
            key=job_result.reduce_task_loads.__getitem__,
        )
        assert hottest in {flag.task_index for flag in skew_flags}
