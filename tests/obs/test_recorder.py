"""Unit tests for the span recorder and its sinks."""

from __future__ import annotations

import io
import json
import threading

from repro.mapreduce import Counters, InMemoryFileSystem, run_job
from repro.mapreduce.cost import CostModel
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.task import Mapper, Reducer
from repro.obs import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    TraceRecorder,
    open_sink,
)


class TestSpanNesting:
    def test_context_manager_builds_tree(self):
        rec = TraceRecorder()
        with rec.span("outer", kind="query") as outer:
            with rec.span("inner-a", kind="phase"):
                pass
            with rec.span("inner-b", kind="phase"):
                pass
        assert [s.name for s in rec.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert all(c.parent_id == outer.span_id for c in outer.children)
        # closed depth-first: children before the parent.
        assert [s.name for s in rec.spans] == ["inner-a", "inner-b", "outer"]
        assert outer.end is not None and outer.duration >= 0.0

    def test_span_ids_unique_and_parent_links(self):
        rec = TraceRecorder()
        with rec.span("a"):
            with rec.span("b"):
                with rec.span("c"):
                    pass
        ids = [s.span_id for s in rec.spans]
        assert len(ids) == len(set(ids))
        by_name = {s.name: s for s in rec.spans}
        assert by_name["c"].parent_id == by_name["b"].span_id
        assert by_name["b"].parent_id == by_name["a"].span_id
        assert by_name["a"].parent_id is None

    def test_explicit_parent_across_threads(self):
        rec = TraceRecorder()
        with rec.span("phase", kind="phase") as phase:

            def work(index: int) -> None:
                with rec.span(f"task-{index}", kind="task", parent=phase):
                    pass

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(phase.children) == 8
        assert {c.parent_id for c in phase.children} == {phase.span_id}
        # worker spans carry their worker thread id, not the opener's.
        assert any(c.thread_id != phase.thread_id for c in phase.children)

    def test_annotate_and_find(self):
        rec = TraceRecorder()
        with rec.span("j", kind="job", job="j") as span:
            span.annotate(records=7)
        assert rec.find(kind="job")[0].attributes["records"] == 7
        assert rec.find(name="nope") == []

    def test_recorder_as_context_manager_closes_sinks(self):
        closed = []

        class Sink:
            def emit(self, span):
                pass

            def close(self):
                closed.append(True)

        with TraceRecorder(Sink()) as rec:
            with rec.span("x"):
                pass
        assert closed == [True]


class TestCounterSnapshots:
    def test_snapshot_is_detached(self):
        counters = Counters()
        counters.increment("g", "n", 3)
        snap = counters.snapshot()
        counters.increment("g", "n", 2)
        assert snap == {"g": {"n": 3}}

    def test_delta_reports_gains_only(self):
        counters = Counters()
        counters.increment("g", "a", 3)
        snap = counters.snapshot()
        counters.increment("g", "a", 4)
        counters.increment("h", "b")
        assert counters.delta(snap) == {"g": {"a": 4}, "h": {"b": 1}}

    def test_delta_empty_when_unchanged(self):
        counters = Counters()
        counters.increment("g", "a")
        assert counters.delta(counters.snapshot()) == {}


class _SplitMapper(Mapper):
    def map(self, record, context):
        context.emit(record % 2, record)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.counters.increment("work", "comparisons", len(values))
        context.emit((key, sum(values)))


def _job(fs) -> JobConf:
    fs.write("in/r", list(range(10)), overwrite=True)
    return JobConf(
        name="sum",
        inputs=[InputSpec("in/r", _SplitMapper())],
        reducer=_SumReducer(),
        output="out",
        num_reduce_tasks=2,
    )


class TestRunJobTracing:
    def test_span_hierarchy_and_counter_deltas(self):
        fs = InMemoryFileSystem()
        rec = TraceRecorder()
        result = run_job(fs, _job(fs), observer=rec, cost_model=CostModel())
        (job_span,) = rec.find(kind="job")
        phases = [c.name for c in job_span.children]
        assert phases == ["map", "shuffle", "reduce"]
        map_tasks = rec.find(kind="task", name="map:in/r")
        assert len(map_tasks) == 1
        assert (
            map_tasks[0].counters["framework"]["map_input_records"] == 10
        )
        reduce_tasks = [
            s for s in rec.find(kind="task") if s.attributes["phase"] == "reduce"
        ]
        assert len(reduce_tasks) == 2
        assert (
            sum(
                s.counters["framework"]["reduce_input_records"]
                for s in reduce_tasks
            )
            == 10
        )
        # job span carries the merged counters and a cost charge.
        assert job_span.counters == result.counters.snapshot()
        assert job_span.attributes["modelled_seconds"] > 0
        assert rec.job_results == [result]

    def test_threads_executor_records_every_task(self):
        fs = InMemoryFileSystem()
        rec = TraceRecorder()
        run_job(fs, _job(fs), executor="threads", observer=rec)
        reduce_tasks = [
            s for s in rec.find(kind="task") if s.attributes["phase"] == "reduce"
        ]
        assert sorted(s.attributes["task_index"] for s in reduce_tasks) == [0, 1]
        (reduce_phase,) = rec.find(kind="phase", name="reduce")
        assert {s.parent_id for s in reduce_tasks} == {reduce_phase.span_id}

    def test_unobserved_run_identical(self):
        fs_a, fs_b = InMemoryFileSystem(), InMemoryFileSystem()
        plain = run_job(fs_a, _job(fs_a))
        traced = run_job(fs_b, _job(fs_b), observer=TraceRecorder())
        assert plain.counters.as_dict() == traced.counters.as_dict()
        assert plain.reduce_task_loads == traced.reduce_task_loads
        assert sorted(map(repr, fs_a.read_dir("out"))) == sorted(
            map(repr, fs_b.read_dir("out"))
        )


class TestSinks:
    def _record(self, *sinks) -> TraceRecorder:
        rec = TraceRecorder(*sinks)
        with rec.span("q", kind="query"):
            with rec.span("j", kind="job", job="j") as span:
                span.counters = {"framework": {"map_input_records": 2}}
        rec.close()
        return rec

    def test_in_memory_sink(self):
        sink = InMemorySink()
        self._record(sink)
        assert [s.name for s in sink.spans] == ["j", "q"]
        assert [s.name for s in sink.roots] == ["q"]

    def test_jsonl_sink_emits_one_object_per_span(self):
        buffer = io.StringIO()
        self._record(JsonlSink(buffer))
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [entry["name"] for entry in lines] == ["j", "q"]
        assert lines[0]["counters"] == {"framework": {"map_input_records": 2}}
        assert lines[0]["parent"] == lines[1]["id"]

    def test_jsonl_sink_to_path(self, tmp_path):
        path = tmp_path / "sub" / "trace.jsonl"
        self._record(JsonlSink(str(path)))
        assert len(path.read_text().splitlines()) == 2

    def test_chrome_sink_writes_trace_events(self, tmp_path):
        path = tmp_path / "trace.json"
        self._record(ChromeTraceSink(str(path)))
        payload = json.loads(path.read_text())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["j", "q"]
        for event in events:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_open_sink_selects_format(self, tmp_path):
        assert isinstance(
            open_sink(str(tmp_path / "a.json"), "chrome"), ChromeTraceSink
        )
        jsonl = open_sink(str(tmp_path / "a.jsonl"), "jsonl")
        assert isinstance(jsonl, JsonlSink)
        jsonl.close()
        try:
            open_sink(str(tmp_path / "x"), "nope")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("unknown format must raise")
