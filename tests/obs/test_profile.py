"""Unit tests of the data-plane profiler building blocks."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import (
    MetricsRegistry,
    Profiler,
    StackSampler,
    TraceRecorder,
    data_plane_summary,
    load_spans_jsonl_tolerant,
    render_flame_svg,
)
from repro.obs.metrics import GROUP_PROFILE
from repro.obs.profile import (
    LEVEL_CPU,
    LEVEL_FULL,
    PROFILE_ENV,
    resolve_profile,
)


class TestResolveProfile:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert resolve_profile(False) is None
        assert resolve_profile(True) == LEVEL_CPU
        assert resolve_profile("full") == LEVEL_FULL
        assert resolve_profile("cpu") == LEVEL_CPU

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off"])
    def test_falsey_env(self, monkeypatch, value):
        monkeypatch.setenv(PROFILE_ENV, value)
        assert resolve_profile() is None

    def test_truthy_env(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert resolve_profile() == LEVEL_CPU
        monkeypatch.setenv(PROFILE_ENV, "full")
        assert resolve_profile() == LEVEL_FULL

    def test_unset_env(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert resolve_profile() is None


class TestStackSampler:
    def test_only_registered_threads_sampled(self):
        sampler = StackSampler()
        assert sampler.sample_once() == 0
        sampler.push(threading.get_ident(), "ctx")
        assert sampler.sample_once() == 1
        folded = sampler.folded()
        assert len(folded) == 1
        (key,) = folded
        assert key.startswith("ctx;")
        assert key.split(";")[-1].endswith("sample_once") or "test" in key

    def test_label_stack_push_pop(self):
        sampler = StackSampler()
        tid = threading.get_ident()
        sampler.push(tid, "outer")
        sampler.push(tid, "inner")
        sampler.sample_once()
        assert any(k.startswith("inner;") for k in sampler.folded())
        sampler.pop(tid)
        sampler.sample_once()
        assert any(k.startswith("outer;") for k in sampler.folded())
        sampler.pop(tid)
        assert sampler.sample_once() == 0

    def test_background_thread_collects(self):
        sampler = StackSampler(interval=0.001)
        sampler.push(threading.get_ident(), "spin")
        sampler.start()
        deadline = time.monotonic() + 2.0
        while sampler.samples == 0 and time.monotonic() < deadline:
            sum(i * i for i in range(10_000))
        sampler.stop()
        assert sampler.samples > 0
        assert sampler.drain()
        assert not sampler.folded()


class TestFlameSvg:
    def test_empty(self):
        svg = render_flame_svg({}, title="empty")
        assert svg.startswith("<svg")
        assert "no samples" in svg

    def test_structure_and_escaping(self):
        folded = {
            "driver;mod.outer;mod.inner": 7,
            "driver;mod.outer;mod.<lambda>": 3,
        }
        svg = render_flame_svg(folded, title="t<&>")
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
        assert "&lt;lambda&gt;" in svg
        assert "t&lt;&amp;&gt;" in svg
        assert "<script" not in svg
        # Root frame spans the full width; children split it.
        assert svg.count("<rect") >= 4

    def test_deterministic(self):
        folded = {"a;b;c": 2, "a;b;d": 1}
        assert render_flame_svg(folded) == render_flame_svg(folded)


class TestProfilerHooks:
    def test_record_hooks_publish_profile_group(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry)
        profiler.record_pickle("j", "map", "parent", "encode", 0.5)
        profiler.record_pickle_bytes("j", "map", "request", 1024)
        profiler.record_shuffle_sort("j", 0.25, 16)
        profiler.record_partition_key_bytes("j", [10, 2000])
        profiler.record_staged_bytes(4096)
        snapshot = registry.as_dict()
        families = {
            name
            for name, entry in snapshot.items()
            if entry.get("group") == GROUP_PROFILE
        }
        assert {
            "repro_profile_pickle_seconds_total",
            "repro_profile_pickle_bytes_total",
            "repro_profile_shuffle_sort_seconds_total",
            "repro_profile_shuffle_sort_keys_total",
            "repro_profile_partition_key_repr_bytes",
            "repro_profile_fs_staged_bytes_total",
        } <= families

    def test_absorb_worker(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry)
        profiler.absorb_worker(
            "j",
            "reduce",
            {
                "cpu_seconds": 0.5,
                "decode_seconds": 0.1,
                "encode_seconds": 0.2,
                "folded": {"mod.f;mod.g": 3},
            },
        )
        cpu = registry.get("repro_profile_cpu_seconds_total")
        assert cpu.value(job="j", phase="reduce", where="task") == 0.5
        assert profiler.folded().get("j;reduce;task;mod.f;mod.g") == 3

    def test_profile_group_excluded_from_fingerprint(self):
        registry = MetricsRegistry()
        baseline = registry.fingerprint()
        profiler = Profiler(registry)
        profiler.record_staged_bytes(123)
        assert registry.fingerprint() == baseline
        assert registry.fingerprint(exclude_groups=()) != baseline

    def test_summary_and_collapsed(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry)
        profiler.absorb_worker(
            "two-way", "map", {"cpu_seconds": 0.1, "folded": {"m.f": 2}}
        )
        profiler.record_shuffle_sort("two-way", 0.01, 8)
        text = profiler.summary()
        assert "two-way" in text and "map" in text
        collapsed = profiler.collapsed_stacks()
        assert "two-way;map;task;m.f 2" in collapsed

    def test_summary_empty_registry(self):
        assert "no profile metrics" in data_plane_summary(MetricsRegistry())


class TestRecorderIntegration:
    def test_recorder_off_has_no_profiler(self):
        recorder = TraceRecorder(profile=False)
        try:
            assert recorder.profiler is None
        finally:
            recorder.close()

    def test_recorder_profiled_phase_annotations(self):
        recorder = TraceRecorder(profile=True)
        try:
            assert recorder.profiler is not None
            with recorder.span("q", kind="query"):
                with recorder.span("map", kind="phase", job="j"):
                    pass
        finally:
            recorder.close()
        phase = next(s for s in recorder.spans if s.kind == "phase")
        assert "profile_mem_rss_peak_bytes" in phase.attributes
        assert "profile_cpu_driver_seconds" in phase.attributes
        assert (
            recorder.metrics.get("repro_profile_mem_rss_peak_bytes").value(
                job="j", phase="map"
            )
            > 0
        )

    def test_full_level_tracemalloc_watermarks(self):
        recorder = TraceRecorder(profile="full")
        try:
            with recorder.span("q", kind="query"):
                with recorder.span("map", kind="phase", job="j"):
                    _ = [list(range(50)) for _ in range(200)]
        finally:
            recorder.close()
        peak = recorder.metrics.get("repro_profile_mem_peak_bytes")
        assert peak is not None
        assert peak.value(job="j", phase="map") > 0


class TestTolerantSpanLoader:
    def test_warns_and_keeps_going(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"name":"a","kind":"job","id":1,"parent":null,"start":0.0,'
            '"end":1.0}\n'
            "garbage\n"
            "[1,2,3]\n"
            '{"kind":"task","id":2,"parent":1}\n'
        )
        spans, warnings = load_spans_jsonl_tolerant(str(path))
        assert [s.span_id for s in spans] == [1, 2]
        assert len(warnings) == 2
        assert "unparsable JSON" in warnings[0]
        assert "expected a span object" in warnings[1]
        # Missing fields fall back to defaults, not KeyErrors.
        assert spans[1].name == "?"
