"""EXPLAIN rendering, plan reconciliation, and the cost-model gate.

Covers the whole predicted-vs-actual observability chain: the EXPLAIN
text per query class (including the Allen path-consistency emptiness
proof with its predicate cycle), the ``plan``/``reconciliation`` spans
and ``repro_plan_*`` gauges the executor records, the span-trace
rebuild (``repro report``), the dashboard's Plan panel, the CLI
surfaces, the per-algorithm pin of prediction errors against
``benchmarks/model_error_baseline.json``, and chaos parity — a
fault-injected run must produce bit-identical predictions and
reconciliations.
"""

from __future__ import annotations

import importlib
import json
import os
import sys

import pytest

from repro.cli import main
from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.io import save_relation
from repro.obs import (
    JsonlSink,
    PlanReconciliation,
    RunReport,
    TraceRecorder,
    explain_query,
    load_spans_jsonl,
    reconciliation_from_spans,
    render_dashboard,
)
from repro.obs.explain import relative_error
from repro.obs.metrics import GROUP_FAULTS, GROUP_WALL
from repro.workloads import SyntheticConfig, generate_relation

_BENCHMARKS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "benchmarks"
)


def _check_model_error():
    """The committed cost-model gate, imported as a module."""
    sys.path.insert(0, _BENCHMARKS_DIR)
    try:
        return importlib.import_module("check_model_error")
    finally:
        sys.path.remove(_BENCHMARKS_DIR)


def make_data(relations, n=60, t_range=(0, 10_000), length_range=(1, 400)):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=n, t_range=t_range, length_range=length_range, seed=index
            ),
        )
        for index, name in enumerate(relations)
    }


HYBRID = [("R1", "overlaps", "R2"), ("R2", "before", "R3")]

GENERAL = [("A.I", "overlaps", "B.I"), ("A.x", "=", "B.x")]


def make_general_data(n=40, seed=0):
    """Relations with an interval ``I`` plus an equality attribute ``x``."""
    import random

    from repro.core.schema import Relation, Row
    from repro.intervals.interval import Interval

    rng = random.Random(seed)
    data = {}
    for name in ("A", "B"):
        rows = []
        for rid in range(n):
            start = rng.uniform(0, 500)
            rows.append(
                Row.make(
                    rid,
                    {
                        "I": Interval(start, start + rng.uniform(1, 20)),
                        "x": float(rng.randint(0, 5)),
                    },
                )
            )
        data[name] = Relation(name, rows)
    return data


class TestRelativeError:
    def test_equal_is_zero(self):
        assert relative_error(5.0, 5.0) == 0.0
        assert relative_error(0.0, 0.0) == 0.0

    def test_signed(self):
        assert relative_error(150.0, 100.0) == pytest.approx(0.5)
        assert relative_error(50.0, 100.0) == pytest.approx(-0.5)

    def test_observed_zero_uses_absolute_floor(self):
        assert relative_error(3.0, 0.0) == pytest.approx(3.0)


class TestExplainRender:
    @pytest.mark.parametrize(
        "conditions,klass,algorithm",
        [
            ([("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")],
             "COLOCATION", "rccis"),
            ([("R1", "before", "R2"), ("R2", "before", "R3")],
             "SEQUENCE", "all_matrix"),
            (HYBRID, "HYBRID", "all_seq_matrix"),
            (GENERAL, "GENERAL", "gen_matrix"),
        ],
    )
    def test_every_query_class_renders(self, conditions, klass, algorithm):
        query = IntervalJoinQuery.parse(conditions)
        if conditions is GENERAL:
            data = make_general_data()
        else:
            data = make_data(query.relations)
        explained = explain_query(query, data)
        text = explained.render()
        assert f"class:       {klass}" in text
        assert explained.algorithm == algorithm
        assert "[chosen by planner]" in text
        assert "rejected alternatives:" in text
        assert "predicted:" in text
        assert "replication_factor" in text
        # every non-chosen registered algorithm gets a rejection reason
        assert len(explained.alternatives) == 9

    def test_prediction_unavailable_without_data(self):
        explained = explain_query(IntervalJoinQuery.parse(HYBRID))
        assert explained.prediction is None
        assert "prediction:  unavailable" in explained.render()

    def test_override_renders_planner_choice(self):
        query = IntervalJoinQuery.parse(HYBRID)
        explained = explain_query(
            query, make_data(query.relations), algorithm="fcts"
        )
        assert explained.chosen_by == "override"
        assert "[chosen by override]" in explained.render()
        assert "planner would pick all_seq_matrix" in explained.reason

    def test_prune_prefers_pasm(self):
        query = IntervalJoinQuery.parse(HYBRID)
        explained = explain_query(
            query, make_data(query.relations), prune=True
        )
        assert explained.algorithm == "pasm"

    def test_exact_tier_in_render(self):
        query = IntervalJoinQuery.parse(HYBRID)
        data = make_data(query.relations, n=40)
        explained = explain_query(query, data, exact=True)
        assert explained.prediction.tier == "exact"
        assert "exact prediction" in explained.render()

    def test_converse_kernel_described_as_swapped(self):
        query = IntervalJoinQuery.parse([("R1", "after", "R2")])
        explained = explain_query(query)
        assert explained.kernels[0][1] == (
            "sweep kernel for before with sides swapped"
        )

    def test_as_dict_is_json_serialisable(self):
        query = IntervalJoinQuery.parse(HYBRID)
        explained = explain_query(query, make_data(query.relations))
        payload = json.loads(json.dumps(explained.as_dict()))
        assert payload["algorithm"] == "all_seq_matrix"
        assert payload["prediction"]["quantities"]["num_cycles"] == 2


class TestEmptinessProof:
    def test_order_cycle_proof_names_the_predicate_cycle(self):
        query = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R2", "before", "R3"),
             ("R3", "before", "R1")]
        )
        explained = explain_query(query, make_data(query.relations))
        assert explained.provably_empty
        text = explained.render()
        assert "answer empty without running jobs" in text
        assert "predicate cycle:" in text
        assert "R1.I before R2.I" in text
        assert "R3.I before R1.I" in text

    def test_opposite_orders_proof_names_both_conditions(self):
        query = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R2", "before", "R1")]
        )
        explained = explain_query(query, make_data(query.relations))
        assert explained.provably_empty
        assert "R1.I before R2.I" in explained.empty_proof
        assert "R2.I before R1.I" in explained.empty_proof

    def test_empty_proof_recorded_on_query_span(self):
        query = IntervalJoinQuery.parse(
            [("R1", "before", "R2"), ("R2", "before", "R1")]
        )
        recorder = TraceRecorder()
        result = execute(
            query, make_data(query.relations), observer=recorder
        )
        assert len(result) == 0
        (span,) = [s for s in recorder.spans if s.kind == "query"]
        assert span.attributes["planner_empty"] is True
        assert "the query output is empty" in span.attributes["empty_proof"]


class TestReconciliationSpans:
    def _observed_run(self, faults=None):
        query = IntervalJoinQuery.parse(HYBRID)
        recorder = TraceRecorder()
        execute(
            query,
            make_data(query.relations),
            num_partitions=4,
            observer=recorder,
            faults=faults,
        )
        return recorder

    def test_plan_and_reconciliation_spans_recorded(self):
        recorder = self._observed_run()
        (plan_span,) = [s for s in recorder.spans if s.kind == "plan"]
        assert plan_span.attributes["algorithm"] == "all_seq_matrix"
        assert plan_span.attributes["tier"] == "analytic"
        assert plan_span.attributes["quantities"]["num_cycles"] == 2
        (rec_span,) = [
            s for s in recorder.spans if s.kind == "reconciliation"
        ]
        assert rec_span.attributes["rows"]
        rebuilt = PlanReconciliation.from_dict(rec_span.attributes)
        assert rebuilt.row("num_cycles").error == 0.0

    def test_plan_gauges_in_prometheus_exposition(self):
        recorder = self._observed_run()
        exposition = recorder.metrics.to_prometheus()
        for family in (
            "repro_plan_predicted",
            "repro_plan_observed",
            "repro_plan_relative_error",
        ):
            assert (
                f'{family}{{algorithm="all_seq_matrix",'
                f'quantity="shuffled_records"}}'
            ) in exposition

    def test_reconciliation_survives_jsonl_roundtrip(self, tmp_path):
        query = IntervalJoinQuery.parse(HYBRID)
        trace = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(JsonlSink(str(trace)))
        execute(
            query,
            make_data(query.relations),
            num_partitions=4,
            observer=recorder,
        )
        live = reconciliation_from_spans(recorder.spans)
        recorder.close()
        reloaded = reconciliation_from_spans(load_spans_jsonl(str(trace)))
        assert [r.as_dict() for r in reloaded] == [
            r.as_dict() for r in live
        ]
        assert len(reloaded) == 1

    def test_run_report_carries_reconciliation(self):
        recorder = self._observed_run()
        report = RunReport.from_recorder(recorder)
        assert len(report.reconciliations) == 1
        assert "plan reconciliation — all_seq_matrix" in report.render()

    def test_dashboard_plan_panel_from_spans(self):
        recorder = self._observed_run()
        page = render_dashboard(recorder.spans, recorder.metrics)
        assert "Plan &#183; predicted vs observed" in page
        assert "shuffled_records" in page

    def test_dashboard_plan_panel_from_metrics_snapshot_only(self):
        recorder = self._observed_run()
        # Strip the plan/algorithm spans: only the gauges remain, the
        # panel must rebuild from them.
        spans = [
            s for s in recorder.spans
            if s.kind not in ("plan", "algorithm", "reconciliation")
        ]
        page = render_dashboard(spans, recorder.metrics.as_dict())
        assert "Plan &#183; predicted vs observed" in page

    def test_chaos_run_reconciles_identically(self):
        baseline = self._observed_run(faults=None)
        chaotic = self._observed_run(faults="2014")
        plan = lambda rec: [  # noqa: E731
            s.attributes["quantities"]
            for s in rec.spans
            if s.kind == "plan"
        ]
        assert plan(chaotic) == plan(baseline)
        assert [
            r.as_dict() for r in reconciliation_from_spans(chaotic.spans)
        ] == [r.as_dict() for r in reconciliation_from_spans(baseline.spans)]
        exclude = (GROUP_WALL, GROUP_FAULTS)
        assert chaotic.metrics.fingerprint(
            exclude_groups=exclude
        ) == baseline.metrics.fingerprint(exclude_groups=exclude)


class TestModelErrorBaseline:
    """Every algorithm's prediction error stays pinned to the baseline."""

    gate = _check_model_error()

    @pytest.fixture(scope="class")
    def baseline(self):
        with open(self.gate.BASELINE_PATH, "r", encoding="utf-8") as handle:
            return json.load(handle)["errors"]

    @pytest.mark.parametrize(
        "algorithm",
        sorted(
            (
                "two_way", "two_way_cascade", "all_replicate", "rccis",
                "all_matrix", "all_seq_matrix", "pasm", "gen_matrix",
                "fcts", "fstc",
            )
        ),
    )
    def test_error_pinned_under_baseline(self, baseline, algorithm):
        fresh = self.gate.algorithm_errors(algorithm)
        for quantity in ("replication_factor", "shuffled_records"):
            assert abs(
                fresh[quantity] - baseline[algorithm][quantity]
            ) <= self.gate.DEFAULT_TOLERANCE, (
                f"{algorithm}.{quantity} drifted from the committed "
                f"model_error_baseline.json"
            )


class TestCli:
    @pytest.fixture
    def relation_files(self, tmp_path):
        paths = {}
        for index, name in enumerate(("R1", "R2", "R3")):
            relation = generate_relation(
                name,
                SyntheticConfig(
                    n=80, t_range=(0, 5_000), length_range=(1, 100),
                    seed=index,
                ),
            )
            path = tmp_path / f"{name.lower()}.jsonl"
            save_relation(relation, str(path))
            paths[name] = str(path)
        return paths

    def _bindings(self, files, names=("R1", "R2", "R3")):
        out = []
        for name in names:
            out.extend(["--relation", f"{name}={files[name]}"])
        return out

    def test_explain_subcommand(self, relation_files, capsys):
        exit_code = main(
            ["explain"]
            + self._bindings(relation_files)
            + ["--condition", "R1 overlaps R2",
               "--condition", "R2 before R3"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "class:       HYBRID" in out
        assert "rejected alternatives:" in out
        assert "replication_factor" in out

    def test_explain_subcommand_without_data(self, capsys):
        exit_code = main(["explain", "--condition", "R1 overlaps R2"])
        assert exit_code == 0
        assert "prediction:  unavailable" in capsys.readouterr().out

    def test_explain_subcommand_json(self, relation_files, capsys):
        exit_code = main(
            ["explain"]
            + self._bindings(relation_files, ("R1", "R2"))
            + ["--condition", "R1 overlaps R2", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "two_way"
        assert payload["prediction"]["tier"] == "analytic"

    def test_explain_subcommand_prints_emptiness_proof(self, capsys):
        exit_code = main(
            ["explain",
             "--condition", "R1 before R2",
             "--condition", "R2 before R1"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "answer empty without running jobs" in out
        assert "opposite orders" in out
        assert "R1.I before R2.I" in out

    @pytest.mark.parametrize(
        "algorithm",
        ["two_way", "two_way_cascade", "all_replicate", "rccis",
         "all_matrix", "all_seq_matrix", "pasm", "gen_matrix", "fcts",
         "fstc"],
    )
    def test_explain_subcommand_all_algorithms(
        self, relation_files, capsys, algorithm
    ):
        conditions = {
            "two_way": ["--condition", "R1 overlaps R2"],
            "all_replicate": ["--condition", "R1 overlaps R2",
                              "--condition", "R2 overlaps R3"],
            "rccis": ["--condition", "R1 overlaps R2",
                      "--condition", "R2 overlaps R3"],
            "all_matrix": ["--condition", "R1 before R2",
                           "--condition", "R2 before R3"],
        }.get(algorithm, ["--condition", "R1 overlaps R2",
                          "--condition", "R2 before R3"])
        exit_code = main(
            ["explain"]
            + self._bindings(relation_files)
            + conditions
            + ["--algorithm", algorithm]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert f"-> {algorithm}" in out
        assert "physical plan:" in out

    def test_run_explain_prints_plan_and_reconciliation(
        self, relation_files, capsys
    ):
        exit_code = main(
            ["run"]
            + self._bindings(relation_files, ("R1", "R2"))
            + ["--condition", "R1 before R2", "--explain",
               "--partitions", "4"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "plan reconciliation — two_way" in out
        assert "tuples:" in out  # the run still happened

    def test_report_rebuilds_reconciliation_from_trace(
        self, relation_files, tmp_path, capsys
    ):
        trace = tmp_path / "t.jsonl"
        assert (
            main(
                ["run"]
                + self._bindings(relation_files, ("R1", "R2"))
                + ["--condition", "R1 overlaps R2",
                   "--partitions", "4",
                   "--trace", str(trace), "--trace-format", "jsonl"]
            )
            == 0
        )
        capsys.readouterr()
        html = tmp_path / "d.html"
        exit_code = main(["report", str(trace), "--html", str(html)])
        assert exit_code == 0
        assert "plan reconciliation — two_way" in capsys.readouterr().out
        assert "Plan &#183; predicted vs observed" in html.read_text()
