"""Unit tests of the live-telemetry building blocks.

End-to-end passivity/parity is pinned by
``tests/integration/test_live_parity.py``; these tests exercise the hub,
the resolver, the watchdog, the ETA model, the HTTP endpoint and the
terminal renderings in isolation.
"""

from __future__ import annotations

import json
import pickle
import time
from urllib.request import urlopen

import pytest

from repro.errors import ReproError
from repro.obs import (
    LiveConfig,
    MetricsRegistry,
    StatusServer,
    TelemetryHub,
    TraceRecorder,
    fetch_progress,
    render_progress_line,
    render_top,
    resolve_live,
)
from repro.obs.live import (
    BEAT_FINISH,
    BEAT_PROGRESS,
    BEAT_START,
    LIVE_ENV,
    LIVE_STALL_ENV,
    Heartbeat,
    TaskBeat,
)
from repro.obs.metrics import GROUP_LIVE


def make_hub(**config) -> TelemetryHub:
    config.setdefault("stall_seconds", 5.0)
    return TelemetryHub(config=LiveConfig(**config))


class TestResolveLive:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(LIVE_ENV, "1")
        assert resolve_live(False) is None
        assert resolve_live(True) == LiveConfig()
        assert resolve_live(2.5) == LiveConfig(stall_seconds=2.5)

    def test_explicit_config_adopted(self, monkeypatch):
        monkeypatch.setenv(LIVE_STALL_ENV, "99")
        config = LiveConfig(stall_seconds=1.25)
        assert resolve_live(config) is config

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off"])
    def test_falsey_env(self, monkeypatch, value):
        monkeypatch.setenv(LIVE_ENV, value)
        assert resolve_live() is None

    def test_truthy_env_honours_stall_env(self, monkeypatch):
        monkeypatch.setenv(LIVE_ENV, "1")
        monkeypatch.setenv(LIVE_STALL_ENV, "0.75")
        assert resolve_live() == LiveConfig(stall_seconds=0.75)

    def test_unset_env_is_off(self, monkeypatch):
        monkeypatch.delenv(LIVE_ENV, raising=False)
        assert resolve_live() is None

    def test_bad_stall_env(self, monkeypatch):
        monkeypatch.setenv(LIVE_ENV, "1")
        monkeypatch.setenv(LIVE_STALL_ENV, "soon")
        with pytest.raises(ReproError):
            resolve_live()

    def test_invalid_config_rejected(self):
        with pytest.raises(ReproError):
            LiveConfig(stall_seconds=0.0)
        with pytest.raises(ReproError):
            LiveConfig(poll_interval=-1.0)


class TestTaskBeat:
    def test_start_progress_finish(self):
        hub = make_hub()
        hub.job_started("j")
        hub.phase_started("j", "map", 1)
        beat = hub.task_beat("j", "map", 0)
        beat.start()
        beat.progress(10, force=True)
        beat.finish(25)
        snap = hub.snapshot()
        (job,) = snap["jobs"]
        (phase,) = job["phases"]
        assert phase["done_tasks"] == 1
        assert phase["records_processed"] == 25
        assert snap["heartbeats"] == 3

    def test_progress_throttled(self):
        hub = make_hub(heartbeat_interval=60.0)
        beat = hub.task_beat("j", "map", 0)
        beat.start()
        for _ in range(100):
            beat.progress(1)
        assert hub.snapshot()["heartbeats"] == 1  # only the start emitted
        beat.progress(50, force=True)
        assert hub.snapshot()["heartbeats"] == 2

    def test_for_attempt_rebinds(self):
        hub = make_hub()
        beat = hub.task_beat("j", "reduce", 3)
        retry = beat.for_attempt(2)
        assert (retry.job, retry.phase, retry.task_index) == ("j", "reduce", 3)
        assert retry.attempt == 2
        assert retry.channel is beat.channel

    def test_threads_channel_beats_arrive(self):
        hub = make_hub(poll_interval=0.01).start()
        try:
            beat = hub.task_beat("j", "map", 0, executor="threads")
            beat.start()
            beat.finish(7)
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if hub.snapshot()["heartbeats"] >= 2:
                    break
                time.sleep(0.01)
            assert hub.snapshot()["heartbeats"] == 2
        finally:
            hub.close()

    def test_heartbeat_picklable(self):
        beat = Heartbeat(BEAT_PROGRESS, "j", "map", 1, 0, 42, 1.0)
        assert pickle.loads(pickle.dumps(beat)) == beat

    def test_finish_counted_once(self):
        hub = make_hub()
        hub.phase_started("j", "reduce", 2)
        beat = hub.task_beat("j", "reduce", 0)
        beat.finish()
        beat.finish()
        (job,) = hub.snapshot()["jobs"]
        assert job["phases"][0]["done_tasks"] == 1

    def test_non_heartbeat_ignored(self):
        hub = make_hub()
        hub.ingest("garbage")  # type: ignore[arg-type]
        assert hub.snapshot()["heartbeats"] == 0


class TestWatchdog:
    def test_stalled_task_flagged(self):
        hub = make_hub(stall_seconds=0.05, poll_interval=0.01).start()
        try:
            hub.phase_started("j", "map", 1)
            hub.task_beat("j", "map", 0).start()
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if hub.stalled_indices("j", "map"):
                    break
                time.sleep(0.01)
            assert hub.stalled_indices("j", "map") == frozenset({0})
            assert hub.stalled_indices("j", "reduce") == frozenset()
            stalled_counter = hub.metrics.counter(
                "repro_live_stalled_total", labels=("job", "phase"),
                group=GROUP_LIVE,
            )
            assert dict(stalled_counter.samples())[("j", "map")] == 1
        finally:
            hub.close()

    def test_finished_task_never_flagged(self):
        hub = make_hub(stall_seconds=0.05, poll_interval=0.01).start()
        try:
            hub.phase_started("j", "map", 1)
            beat = hub.task_beat("j", "map", 0)
            beat.start()
            beat.finish()
            time.sleep(0.2)
            assert hub.stalled_indices("j", "map") == frozenset()
        finally:
            hub.close()

    def test_heartbeats_keep_task_fresh(self):
        hub = make_hub(stall_seconds=0.15, poll_interval=0.01).start()
        try:
            hub.phase_started("j", "map", 1)
            beat = hub.task_beat("j", "map", 0)
            beat.start()
            for _ in range(8):
                time.sleep(0.04)
                beat.progress(force=True)
            assert hub.stalled_indices("j", "map") == frozenset()
        finally:
            hub.close()


class TestProgressAndEta:
    def test_no_state_no_progress(self):
        hub = make_hub()
        snap = hub.snapshot()
        assert snap["progress"] == 0.0
        assert snap["eta_seconds"] is None

    def test_uniform_weights_without_plan(self):
        hub = make_hub()
        hub.job_started("j")
        hub.phase_started("j", "map", 4)
        for index in range(2):
            beat = hub.task_beat("j", "map", index)
            beat.start()
            beat.finish()
        # map half done and weighs 1/3 of the job -> 1/6 overall.
        assert hub.snapshot()["progress"] == pytest.approx(1 / 6)

    def test_plan_weights_scale_phases(self):
        hub = make_hub()
        hub.set_plan(
            "a",
            [{"records_read": 600.0, "shuffled_records": 200.0}],
            modelled_seconds=4.0,
        )
        hub.job_started("j")
        hub.phase_started("j", "map", 1)
        hub.phase_finished("j", "map")
        # map weighs 600 of (600 + 200 + 200).
        snap = hub.snapshot()
        assert snap["progress"] == pytest.approx(0.6)
        assert snap["eta_seconds"] is not None
        assert snap["modelled_seconds"] == 4.0

    def test_unstarted_predicted_cycles_in_denominator(self):
        hub = make_hub()
        hub.set_plan("a", [
            {"records_read": 100.0, "shuffled_records": 100.0},
            {"records_read": 100.0, "shuffled_records": 100.0},
        ])
        hub.job_started("cycle-1")
        hub.job_finished("cycle-1")
        # One of two equal-weight cycles done.
        assert hub.snapshot()["progress"] == pytest.approx(0.5)

    def test_final_gauges_on_close(self):
        hub = make_hub()
        hub.set_plan("a", [{"records_read": 10.0, "shuffled_records": 5.0}],
                     modelled_seconds=2.5)
        hub.job_started("j")
        hub.phase_started("j", "map", 1)
        hub.phase_finished("j", "map")
        hub.close()
        gauge = hub.metrics.gauge(
            "repro_live_run_seconds", labels=("kind",), group=GROUP_LIVE
        )
        kinds = {key[0]: value for key, value in gauge.samples()}
        assert kinds["actual"] >= 0.0
        assert kinds["predicted"] == 2.5
        assert "eta_initial" in kinds

    def test_close_idempotent(self):
        hub = make_hub().start()
        hub.close()
        hub.close()
        assert hub.closed


class TestStatusServer:
    def _recorder(self) -> TraceRecorder:
        recorder = TraceRecorder(live=LiveConfig())
        recorder.live.job_started("j")
        recorder.live.phase_started("j", "map", 2)
        beat = recorder.live.task_beat("j", "map", 0)
        beat.start()
        beat.finish(11)
        return recorder

    def test_routes(self):
        recorder = self._recorder()
        server = StatusServer(recorder, port=0).start()
        try:
            prom = urlopen(server.url + "/metrics").read().decode("utf-8")
            assert "repro_live_heartbeats_total" in prom
            assert "repro_live_run_progress_ratio" in prom
            progress = json.loads(
                urlopen(server.url + "/progress").read().decode("utf-8")
            )
            assert progress["jobs"][0]["job"] == "j"
            assert progress["jobs"][0]["phases"][0]["done_tasks"] == 1
            page = urlopen(server.url + "/").read().decode("utf-8")
            assert "<html" in page.lower()
            error = urlopen(server.url + "/nope")
        except Exception as exc:  # urllib raises on 404
            assert "404" in str(exc)
        finally:
            server.close()
            recorder.close()

    def test_fetch_progress_helper(self):
        recorder = self._recorder()
        server = StatusServer(recorder, port=0).start()
        try:
            for url in (
                server.url,
                server.url + "/",
                server.url + "/progress",
                f"127.0.0.1:{server.port}",
            ):
                snapshot = fetch_progress(url)
                assert snapshot["jobs"][0]["job"] == "j"
        finally:
            server.close()
            recorder.close()


class TestRenderings:
    SNAPSHOT = {
        "algorithm": "rccis",
        "elapsed_seconds": 1.5,
        "progress": 0.25,
        "eta_seconds": 4.5,
        "heartbeats": 12,
        "closed": False,
        "jobs": [
            {
                "job": "split",
                "finished": False,
                "phases": [
                    {
                        "phase": "map",
                        "total_tasks": 4,
                        "done_tasks": 1,
                        "finished": False,
                        "running_tasks": 2,
                        "records_processed": 37,
                    }
                ],
            }
        ],
        "stalled": [{"job": "split", "phase": "map", "task_index": 3}],
    }

    def test_progress_line(self):
        line = render_progress_line(self.SNAPSHOT)
        assert "progress  25%" in line
        assert "eta 4.5s" in line
        assert "split map 1/4" in line
        assert "stalled 1" in line

    def test_top_view(self):
        view = render_top(self.SNAPSHOT)
        assert "algorithm rccis" in view
        assert "1/4" in view
        assert "37 records" in view
        assert "stalled: split map[3]" in view

    def test_top_view_closed(self):
        snapshot = dict(self.SNAPSHOT, closed=True, stalled=[])
        assert "run complete" in render_top(snapshot)


class TestRecorderIntegration:
    def test_live_off_by_default(self):
        recorder = TraceRecorder()
        assert recorder.live is None
        recorder.close()

    def test_live_config_attaches_hub(self):
        recorder = TraceRecorder(live=LiveConfig(stall_seconds=1.0))
        try:
            assert isinstance(recorder.live, TelemetryHub)
            assert recorder.live.metrics is recorder.metrics
            assert recorder.live.config.stall_seconds == 1.0
        finally:
            recorder.close()

    def test_close_closes_hub(self):
        recorder = TraceRecorder(live=LiveConfig())
        recorder.close()
        assert recorder.live.closed

    def test_live_env(self, monkeypatch):
        monkeypatch.setenv(LIVE_ENV, "1")
        recorder = TraceRecorder()
        try:
            assert isinstance(recorder.live, TelemetryHub)
        finally:
            recorder.close()

    def test_live_group_excluded_from_fingerprint(self):
        registry = MetricsRegistry()
        registry.counter("plain_total").inc(3)
        baseline = registry.fingerprint()
        registry.counter("repro_live_heartbeats_total", group=GROUP_LIVE).inc()
        assert registry.fingerprint() == baseline

    def test_snapshot_spans_includes_open_spans(self):
        recorder = TraceRecorder()
        span = recorder.start_span("job:x", kind="job")
        spans = recorder.snapshot_spans()
        assert any(s.name == "job:x" for s in spans)
        recorder.end_span(span)
        recorder.close()
