"""Legacy setup shim.

The offline environment ships setuptools without the `wheel` package, so
PEP 660 editable installs (which build an editable wheel) fail.  This shim
lets `pip install -e . --no-use-pep517 --no-build-isolation` — and plain
`pip install -e .` via pip's automatic fallback on older pips — use the
classic `setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
